//! k-nearest neighbors with min-max normalized heterogeneous distance
//! (HEOM-style): numeric dimensions use range-normalized absolute
//! difference, nominal dimensions 0/1 mismatch, and any missing value
//! contributes the maximum distance of 1 — the standard Weka convention.
//!
//! kNN is the suite's canary for the *dimensionality* defect: irrelevant
//! attributes dilute the distance and degrade it faster than the other
//! algorithms.

use super::instances::{AttrKind, Instances};
use super::Classifier;
use crate::error::{MiningError, Result};

/// The kNN classifier (stores the training data).
#[derive(Debug, Clone)]
pub struct Knn {
    /// Neighborhood size.
    pub k: usize,
    train: Option<Instances>,
    ranges: Vec<Option<(f64, f64)>>,
    numeric: Vec<bool>,
}

impl Knn {
    /// Create an untrained kNN.
    pub fn new(k: usize) -> Self {
        Knn {
            k: k.max(1),
            train: None,
            ranges: vec![],
            numeric: vec![],
        }
    }

    fn dim_distance(&self, a: usize, x: Option<f64>, y: Option<f64>) -> f64 {
        match (x, y) {
            (Some(x), Some(y)) => {
                if self.numeric[a] {
                    match self.ranges[a] {
                        Some((lo, hi)) if hi > lo => ((x - y).abs() / (hi - lo)).min(1.0),
                        _ => {
                            if x == y {
                                0.0
                            } else {
                                1.0
                            }
                        }
                    }
                } else if x == y {
                    0.0
                } else {
                    1.0
                }
            }
            // Missing on either side: maximal dissimilarity.
            _ => 1.0,
        }
    }

    fn distance(&self, a: &[Option<f64>], b: &[Option<f64>]) -> f64 {
        (0..self.numeric.len())
            .map(|i| {
                let d = self.dim_distance(i, a.get(i).copied().flatten(), b[i]);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset("kNN needs labeled rows".into()));
        }
        let train = data.subset(&labeled);
        self.ranges = train.numeric_ranges();
        self.numeric = train
            .attributes
            .iter()
            .map(|a| a.kind == AttrKind::Numeric)
            .collect();
        self.train = Some(train);
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let train = self.train.as_ref().ok_or(MiningError::NotFitted("kNN"))?;
        let mut dists: Vec<(f64, usize)> = train
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| (self.distance(row, r), i))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut votes = vec![0.0f64; train.n_classes().max(1)];
        for &(d, i) in dists.iter().take(self.k) {
            let label = train.labels[i].expect("training rows are labeled");
            // Inverse-distance weighting with a floor for exact matches.
            votes[label] += 1.0 / (d + 1e-6);
        }
        Ok(votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn model_size(&self) -> usize {
        self.train
            .as_ref()
            .map(|t| t.len() * t.n_attributes())
            .unwrap_or(0)
    }
}
