//! One-vs-rest logistic regression trained by full-batch gradient
//! descent. Numeric attributes are z-scored; nominal attributes are
//! one-hot encoded; missing values are mean/zero-imputed at encoding
//! time (the model's documented missing-value strategy).

use super::instances::{AttrKind, Instances};
use super::Classifier;
use crate::error::{MiningError, Result};

/// The logistic-regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Per-class weight vectors (bias last), after fit.
    weights: Vec<Vec<f64>>,
    encoder: Option<Encoder>,
}

/// Feature encoder: attribute layout, z-score parameters and one-hot
/// offsets derived from the training data.
#[derive(Debug, Clone)]
struct Encoder {
    /// Per attribute: numeric (mean, std) or nominal cardinality.
    specs: Vec<EncSpec>,
    /// Total encoded width (excluding bias).
    width: usize,
}

#[derive(Debug, Clone)]
enum EncSpec {
    Numeric { mean: f64, std: f64 },
    Nominal { cardinality: usize },
}

impl Encoder {
    fn from_instances(data: &Instances) -> Encoder {
        let means = data.numeric_means();
        let mut specs = Vec::with_capacity(data.n_attributes());
        let mut width = 0;
        for (a, attr) in data.attributes.iter().enumerate() {
            match &attr.kind {
                AttrKind::Numeric => {
                    let mean = means[a].unwrap_or(0.0);
                    let vals: Vec<f64> = data.rows.iter().filter_map(|r| r[a]).collect();
                    let std = if vals.len() < 2 {
                        1.0
                    } else {
                        let v = vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                            / (vals.len() - 1) as f64;
                        v.sqrt().max(1e-9)
                    };
                    specs.push(EncSpec::Numeric { mean, std });
                    width += 1;
                }
                AttrKind::Nominal(dict) => {
                    specs.push(EncSpec::Nominal {
                        cardinality: dict.len(),
                    });
                    width += dict.len();
                }
            }
        }
        Encoder { specs, width }
    }

    fn encode(&self, row: &[Option<f64>]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.width);
        for (a, spec) in self.specs.iter().enumerate() {
            let v = row.get(a).copied().flatten();
            match spec {
                EncSpec::Numeric { mean, std } => {
                    // Missing numeric → mean → encodes to 0.
                    out.push((v.unwrap_or(*mean) - mean) / std);
                }
                EncSpec::Nominal { cardinality } => {
                    let hot = v.map(|x| x as usize).filter(|i| i < cardinality);
                    for i in 0..*cardinality {
                        out.push(if Some(i) == hot { 1.0 } else { 0.0 });
                    }
                }
            }
        }
        out
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Create an untrained model.
    pub fn new(epochs: usize, learning_rate: f64) -> Self {
        LogisticRegression {
            epochs: epochs.max(1),
            learning_rate,
            l2: 1e-4,
            weights: vec![],
            encoder: None,
        }
    }

    /// Per-class probabilities for a row (softmax over OvR scores).
    pub fn probabilities(&self, row: &[Option<f64>]) -> Result<Vec<f64>> {
        let enc = self
            .encoder
            .as_ref()
            .ok_or(MiningError::NotFitted("LogisticRegression"))?;
        let x = enc.encode(row);
        let mut probs: Vec<f64> = self
            .weights
            .iter()
            .map(|w| {
                let z: f64 =
                    x.iter().zip(w.iter()).map(|(xi, wi)| xi * wi).sum::<f64>() + w[w.len() - 1];
                sigmoid(z)
            })
            .collect();
        let total: f64 = probs.iter().sum();
        if total > 0.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        Ok(probs)
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LogisticRegression"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "LogisticRegression needs labeled rows".into(),
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(MiningError::InvalidParameter(
                "learning rate must be positive".into(),
            ));
        }
        let train = data.subset(&labeled);
        let encoder = Encoder::from_instances(&train);
        let xs: Vec<Vec<f64>> = train.rows.iter().map(|r| encoder.encode(r)).collect();
        let n = xs.len() as f64;
        let n_classes = train.n_classes().max(2);
        let width = encoder.width;
        let mut weights = vec![vec![0.0f64; width + 1]; n_classes];
        for (c, w) in weights.iter_mut().enumerate() {
            for _ in 0..self.epochs {
                let mut grad = vec![0.0f64; width + 1];
                for (x, label) in xs.iter().zip(&train.labels) {
                    let y = if *label == Some(c) { 1.0 } else { 0.0 };
                    let z: f64 =
                        x.iter().zip(w.iter()).map(|(xi, wi)| xi * wi).sum::<f64>() + w[width];
                    let err = sigmoid(z) - y;
                    for (g, xi) in grad.iter_mut().zip(x.iter()) {
                        *g += err * xi;
                    }
                    grad[width] += err;
                }
                for (wi, gi) in w.iter_mut().zip(grad.iter()) {
                    *wi -= self.learning_rate * (gi / n + self.l2 * *wi);
                }
            }
        }
        self.weights = weights;
        self.encoder = Some(encoder);
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let probs = self.probabilities(row)?;
        Ok(probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn model_size(&self) -> usize {
        self.weights.iter().map(Vec::len).sum()
    }
}
