//! The pre-rewrite **row-major reference** implementation.
//!
//! A snapshot of the `Instances` data layout (`Vec<Vec<Option<f64>>>`
//! rows) and every classifier kernel exactly as they existed before the
//! columnar struct-of-arrays rewrite (DESIGN.md §11). It exists for two
//! reasons:
//!
//! 1. the equivalence suite proves the columnar kernels reproduce these
//!    results **bit for bit** (same predictions, same accuracies, same
//!    KB bytes) across seeds and worker counts, and
//! 2. `kernel_bench` measures the columnar speedup against this
//!    baseline, in the same process on the same data.
//!
//! It is not part of the supported API surface and will not grow new
//! features; treat it as a frozen oracle.
#![allow(missing_docs)]

pub mod crossval;
pub mod decision_tree;
pub mod instances;
pub mod knn;
pub mod logistic;
pub mod naive_bayes;
pub mod one_r;
pub mod random_forest;
pub mod zero_r;

pub use crossval::{cross_validate, stratified_folds};
pub use decision_tree::DecisionTree;
pub use instances::Instances;
pub use knn::Knn;
pub use logistic::LogisticRegression;
pub use naive_bayes::NaiveBayes;
pub use one_r::OneR;
pub use random_forest::RandomForest;
pub use zero_r::ZeroR;

use crate::classify::AlgorithmSpec;
use crate::error::Result;

/// The pre-rewrite classifier trait: row-major fit and per-row predict.
pub trait Classifier {
    /// Short algorithm name (e.g. `"NaiveBayes"`).
    fn name(&self) -> &'static str;

    /// Train on the labeled rows of `data`.
    fn fit(&mut self, data: &Instances) -> Result<()>;

    /// Predict the class index of one feature row.
    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize>;

    /// Predict every row of a dataset.
    fn predict(&self, data: &Instances) -> Result<Vec<usize>> {
        data.rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// A size proxy for the fitted model.
    fn model_size(&self) -> usize {
        1
    }
}

/// Instantiate the reference (row-major) classifier for a spec.
pub fn build(spec: &AlgorithmSpec) -> Box<dyn Classifier> {
    match spec {
        AlgorithmSpec::ZeroR => Box::new(ZeroR::new()),
        AlgorithmSpec::OneR => Box::new(OneR::new()),
        AlgorithmSpec::NaiveBayes => Box::new(NaiveBayes::new()),
        AlgorithmSpec::DecisionTree {
            max_depth,
            min_leaf,
        } => Box::new(DecisionTree::new(*max_depth, *min_leaf)),
        AlgorithmSpec::Knn { k } => Box::new(Knn::new(*k)),
        AlgorithmSpec::Logistic {
            epochs,
            learning_rate,
        } => Box::new(LogisticRegression::new(*epochs, *learning_rate)),
        AlgorithmSpec::RandomForest {
            trees,
            max_depth,
            seed,
        } => Box::new(RandomForest::new(*trees, *max_depth, *seed)),
    }
}
