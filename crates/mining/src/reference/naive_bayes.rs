//! Naive Bayes: Gaussian likelihoods for numeric attributes, Laplace-
//! smoothed categorical likelihoods for nominal attributes. Missing
//! values are simply skipped in the likelihood product — the textbook
//! reason Naive Bayes degrades gracefully under missingness.

use super::instances::{AttrKind, Instances};
use super::Classifier;
use crate::error::{MiningError, Result};

#[derive(Debug, Clone)]
enum AttrModel {
    /// Per-class `(mean, variance)`.
    Gaussian(Vec<(f64, f64)>),
    /// Per-class smoothed log-probabilities per category.
    Categorical(Vec<Vec<f64>>),
}

/// The Naive Bayes classifier.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    log_priors: Vec<f64>,
    models: Vec<AttrModel>,
    fitted: bool,
}

const MIN_VARIANCE: f64 = 1e-9;

impl NaiveBayes {
    /// Create an untrained Naive Bayes.
    pub fn new() -> Self {
        NaiveBayes::default()
    }

    fn gaussian_log_pdf(x: f64, mean: f64, var: f64) -> f64 {
        let var = var.max(MIN_VARIANCE);
        -0.5 * ((x - mean) * (x - mean) / var + var.ln() + (2.0 * std::f64::consts::PI).ln())
    }

    /// Per-class log-posterior (unnormalized) of a row.
    pub fn log_posteriors(&self, row: &[Option<f64>]) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(MiningError::NotFitted("NaiveBayes"));
        }
        let mut scores = self.log_priors.clone();
        for (a, model) in self.models.iter().enumerate() {
            let Some(v) = row.get(a).copied().flatten() else {
                continue;
            };
            for (c, score) in scores.iter_mut().enumerate() {
                match model {
                    AttrModel::Gaussian(params) => {
                        let (mean, var) = params[c];
                        *score += Self::gaussian_log_pdf(v, mean, var);
                    }
                    AttrModel::Categorical(logps) => {
                        let idx = v as usize;
                        if let Some(lp) = logps[c].get(idx) {
                            *score += lp;
                        }
                    }
                }
            }
        }
        Ok(scores)
    }
}

impl Classifier for NaiveBayes {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "NaiveBayes needs labeled rows".into(),
            ));
        }
        let n_classes = data.n_classes();
        if n_classes == 0 {
            return Err(MiningError::InvalidDataset("dataset has no classes".into()));
        }
        let counts = data.class_counts();
        let total: usize = counts.iter().sum();
        self.log_priors = counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (total as f64 + n_classes as f64)).ln())
            .collect();
        self.models = Vec::with_capacity(data.n_attributes());
        for (a, attr) in data.attributes.iter().enumerate() {
            match &attr.kind {
                AttrKind::Numeric => {
                    let mut params = Vec::with_capacity(n_classes);
                    for c in 0..n_classes {
                        let vals: Vec<f64> = labeled
                            .iter()
                            .filter(|&&i| data.labels[i] == Some(c))
                            .filter_map(|&i| data.rows[i][a])
                            .collect();
                        if vals.is_empty() {
                            params.push((0.0, 1.0));
                            continue;
                        }
                        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                        let var = if vals.len() < 2 {
                            MIN_VARIANCE
                        } else {
                            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                                / (vals.len() - 1) as f64
                        };
                        params.push((mean, var));
                    }
                    self.models.push(AttrModel::Gaussian(params));
                }
                AttrKind::Nominal(dict) => {
                    let k = dict.len().max(1);
                    let mut logps = Vec::with_capacity(n_classes);
                    for c in 0..n_classes {
                        let mut cat_counts = vec![0usize; k];
                        let mut total_c = 0usize;
                        for &i in &labeled {
                            if data.labels[i] != Some(c) {
                                continue;
                            }
                            if let Some(v) = data.rows[i][a] {
                                let idx = v as usize;
                                if idx < k {
                                    cat_counts[idx] += 1;
                                    total_c += 1;
                                }
                            }
                        }
                        logps.push(
                            cat_counts
                                .iter()
                                .map(|&n| ((n as f64 + 1.0) / (total_c as f64 + k as f64)).ln())
                                .collect(),
                        );
                    }
                    self.models.push(AttrModel::Categorical(logps));
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let scores = self.log_posteriors(row)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn model_size(&self) -> usize {
        self.models
            .iter()
            .map(|m| match m {
                AttrModel::Gaussian(p) => p.len() * 2,
                AttrModel::Categorical(p) => p.iter().map(Vec::len).sum(),
            })
            .sum()
    }
}
