//! OneR (Holte 1993): the best single-attribute rule.
//!
//! Numeric attributes are discretized into equal-width bins; the
//! attribute whose per-bucket majority rule has the lowest training
//! error wins. Missing values form their own bucket.

use super::instances::{AttrKind, Instances};
use super::Classifier;
use crate::error::{MiningError, Result};

const NUMERIC_BINS: usize = 8;

#[derive(Debug, Clone)]
struct Rule {
    attribute: usize,
    /// For numeric attributes: `(min, width)` of the binning.
    binning: Option<(f64, f64)>,
    /// Majority class per bucket (last bucket = missing).
    bucket_class: Vec<usize>,
    default: usize,
}

/// The OneR classifier.
#[derive(Debug, Clone, Default)]
pub struct OneR {
    rule: Option<Rule>,
}

impl OneR {
    /// Create an untrained OneR.
    pub fn new() -> Self {
        OneR::default()
    }

    /// The chosen attribute index, if fitted.
    pub fn chosen_attribute(&self) -> Option<usize> {
        self.rule.as_ref().map(|r| r.attribute)
    }

    fn bucket_of(rule_binning: Option<(f64, f64)>, n_buckets: usize, v: Option<f64>) -> usize {
        match v {
            None => n_buckets - 1,
            Some(x) => match rule_binning {
                Some((min, width)) => {
                    if width <= 0.0 {
                        0
                    } else {
                        (((x - min) / width).floor() as isize).clamp(0, (n_buckets - 2) as isize)
                            as usize
                    }
                }
                None => (x as usize).min(n_buckets - 2),
            },
        }
    }
}

impl Classifier for OneR {
    fn name(&self) -> &'static str {
        "OneR"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "OneR needs labeled rows".into(),
            ));
        }
        let n_classes = data.n_classes().max(1);
        let default = data.majority_class();
        let ranges = data.numeric_ranges();
        let mut best: Option<(usize, Rule)> = None; // (errors, rule)
        for (a, attr) in data.attributes.iter().enumerate() {
            let (binning, n_value_buckets) = match &attr.kind {
                AttrKind::Numeric => {
                    let Some((lo, hi)) = ranges[a] else { continue };
                    let width = (hi - lo) / NUMERIC_BINS as f64;
                    (Some((lo, width)), NUMERIC_BINS)
                }
                AttrKind::Nominal(dict) => {
                    if dict.is_empty() {
                        continue;
                    }
                    (None, dict.len())
                }
            };
            let n_buckets = n_value_buckets + 1; // + missing bucket
            let mut counts = vec![vec![0usize; n_classes]; n_buckets];
            for &i in &labeled {
                let b = Self::bucket_of(binning, n_buckets, data.rows[i][a]);
                counts[b][data.labels[i].expect("labeled")] += 1;
            }
            let bucket_class: Vec<usize> = counts
                .iter()
                .map(|c| {
                    c.iter()
                        .enumerate()
                        .max_by_key(|(_, n)| **n)
                        .map(|(i, n)| if *n == 0 { default } else { i })
                        .unwrap_or(default)
                })
                .collect();
            let errors: usize = labeled
                .iter()
                .filter(|&&i| {
                    let b = Self::bucket_of(binning, n_buckets, data.rows[i][a]);
                    bucket_class[b] != data.labels[i].expect("labeled")
                })
                .count();
            let rule = Rule {
                attribute: a,
                binning,
                bucket_class,
                default,
            };
            if best.as_ref().map(|(e, _)| errors < *e).unwrap_or(true) {
                best = Some((errors, rule));
            }
        }
        let (_, rule) = best
            .ok_or_else(|| MiningError::InvalidDataset("OneR found no usable attribute".into()))?;
        self.rule = Some(rule);
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        let rule = self.rule.as_ref().ok_or(MiningError::NotFitted("OneR"))?;
        let v = row.get(rule.attribute).copied().flatten();
        let b = Self::bucket_of(rule.binning, rule.bucket_class.len(), v);
        Ok(*rule.bucket_class.get(b).unwrap_or(&rule.default))
    }

    fn model_size(&self) -> usize {
        self.rule
            .as_ref()
            .map(|r| r.bucket_class.len())
            .unwrap_or(0)
    }
}
