//! Random forest: bagged C4.5-style trees with √d feature subsampling
//! and majority voting.

use super::instances::Instances;
use super::{Classifier, DecisionTree};
use crate::error::{MiningError, Result};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Seed for bootstrap sampling and feature subsampling.
    pub seed: u64,
    forest: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Create an untrained forest.
    pub fn new(trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForest {
            trees: trees.max(1),
            max_depth: max_depth.max(1),
            seed,
            forest: vec![],
            n_classes: 0,
        }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RandomForest"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        let labeled = data.labeled_indices();
        if labeled.is_empty() {
            return Err(MiningError::InvalidDataset(
                "RandomForest needs labeled rows".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_attrs = data.n_attributes();
        // √d features per tree, but never fewer than 2 (when available):
        // with tiny attribute counts a 1-feature tree cannot express
        // interactions at all.
        let subset_size = ((n_attrs as f64).sqrt().round() as usize)
            .max(2)
            .min(n_attrs);
        self.n_classes = data.n_classes();
        self.forest.clear();
        for _ in 0..self.trees {
            // Bootstrap sample of the labeled rows.
            let sample: Vec<usize> = (0..labeled.len())
                .map(|_| labeled[rng.random_range(0..labeled.len())])
                .collect();
            let boot = data.subset(&sample);
            // Feature subset (distinct attribute indices).
            let mut attrs: Vec<usize> = (0..n_attrs).collect();
            for i in 0..subset_size {
                let j = i + rng.random_range(0..n_attrs - i);
                attrs.swap(i, j);
            }
            attrs.truncate(subset_size);
            let mut tree = DecisionTree::new(self.max_depth, 2);
            tree.feature_subset = Some(attrs);
            tree.fit(&boot)?;
            self.forest.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[Option<f64>]) -> Result<usize> {
        if self.forest.is_empty() {
            return Err(MiningError::NotFitted("RandomForest"));
        }
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for tree in &self.forest {
            let p = tree.predict_row(row)?;
            if p < votes.len() {
                votes[p] += 1;
            }
        }
        Ok(votes
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    fn model_size(&self) -> usize {
        self.forest.iter().map(DecisionTree::node_count).sum()
    }
}
