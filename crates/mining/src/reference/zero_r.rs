//! ZeroR: the majority-class baseline every real classifier must beat.

use super::instances::Instances;
use super::Classifier;
use crate::error::{MiningError, Result};

/// Predicts the training majority class for every row.
#[derive(Debug, Clone, Default)]
pub struct ZeroR {
    majority: Option<usize>,
}

impl ZeroR {
    /// Create an untrained ZeroR.
    pub fn new() -> Self {
        ZeroR::default()
    }
}

impl Classifier for ZeroR {
    fn name(&self) -> &'static str {
        "ZeroR"
    }

    fn fit(&mut self, data: &Instances) -> Result<()> {
        if data.labeled_indices().is_empty() {
            return Err(MiningError::InvalidDataset(
                "ZeroR needs at least one labeled row".into(),
            ));
        }
        self.majority = Some(data.majority_class());
        Ok(())
    }

    fn predict_row(&self, _row: &[Option<f64>]) -> Result<usize> {
        self.majority.ok_or(MiningError::NotFitted("ZeroR"))
    }
}
