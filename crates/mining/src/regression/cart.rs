//! CART regression trees (variance-reduction splits) — one of the
//! dimensionality-reduction/modeling tools the paper's §1 cites
//! ("PCA or Regression Trees, among others").

use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, Attribute, ColumnView, Instances};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        attribute: usize,
        threshold: f64,
        missing_to: usize,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn size(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.size() + right.size(),
        }
    }
}

/// A regression tree over the numeric attributes of [`Instances`],
/// fitted against a numeric target vector.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum rows per leaf.
    pub min_leaf: usize,
    root: Option<Node>,
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn sse(values: &[f64]) -> f64 {
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum()
}

impl RegressionTree {
    /// Create an untrained tree.
    pub fn new(max_depth: usize, min_leaf: usize) -> Self {
        RegressionTree {
            max_depth: max_depth.max(1),
            min_leaf: min_leaf.max(1),
            root: None,
        }
    }

    /// Number of nodes after fit.
    pub fn node_count(&self) -> usize {
        self.root.as_ref().map(Node::size).unwrap_or(0)
    }

    fn build(
        &self,
        attributes: &[Attribute],
        cols: &[ColumnView<'_>],
        target: &[f64],
        rows: &[usize],
        depth: usize,
    ) -> Node {
        let ys: Vec<f64> = rows.iter().map(|&i| target[i]).collect();
        let node_value = mean(&ys);
        if depth >= self.max_depth || rows.len() < 2 * self.min_leaf || sse(&ys) < 1e-12 {
            return Node::Leaf { value: node_value };
        }
        let parent_sse = sse(&ys);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, attr, threshold)
        for (a, attr) in attributes.iter().enumerate() {
            if attr.kind != AttrKind::Numeric {
                continue;
            }
            let mut vals: Vec<(f64, f64)> = rows
                .iter()
                .filter_map(|&i| cols[a].get(i).map(|v| (v, target[i])))
                .collect();
            if vals.len() < 2 * self.min_leaf {
                continue;
            }
            vals.sort_by(|x, y| x.0.total_cmp(&y.0));
            // Incremental SSE via sums.
            let total_sum: f64 = vals.iter().map(|(_, y)| y).sum();
            let total_sq: f64 = vals.iter().map(|(_, y)| y * y).sum();
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for i in 0..vals.len() - 1 {
                left_sum += vals[i].1;
                left_sq += vals[i].1 * vals[i].1;
                if vals[i].0 == vals[i + 1].0 {
                    continue;
                }
                let nl = (i + 1) as f64;
                let nr = (vals.len() - i - 1) as f64;
                if (nl as usize) < self.min_leaf || (nr as usize) < self.min_leaf {
                    continue;
                }
                let sse_l = left_sq - left_sum * left_sum / nl;
                let right_sum = total_sum - left_sum;
                let sse_r = (total_sq - left_sq) - right_sum * right_sum / nr;
                let gain = parent_sse - (sse_l + sse_r);
                if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-12) {
                    best = Some((gain, a, (vals[i].0 + vals[i + 1].0) / 2.0));
                }
            }
        }
        let Some((_, attribute, threshold)) = best else {
            return Node::Leaf { value: node_value };
        };
        let split_col = &cols[attribute];
        let left_rows: Vec<usize> = rows
            .iter()
            .copied()
            .filter(|&i| matches!(split_col.get(i), Some(v) if v <= threshold))
            .collect();
        let right_rows: Vec<usize> = rows
            .iter()
            .copied()
            .filter(|&i| matches!(split_col.get(i), Some(v) if v > threshold))
            .collect();
        let missing: Vec<usize> = rows
            .iter()
            .copied()
            .filter(|&i| split_col.get(i).is_none())
            .collect();
        let missing_to = usize::from(right_rows.len() > left_rows.len());
        let mut l = left_rows;
        let mut r = right_rows;
        if missing_to == 0 {
            l.extend(missing);
        } else {
            r.extend(missing);
        }
        if l.is_empty() || r.is_empty() {
            return Node::Leaf { value: node_value };
        }
        Node::Split {
            attribute,
            threshold,
            missing_to,
            left: Box::new(self.build(attributes, cols, target, &l, depth + 1)),
            right: Box::new(self.build(attributes, cols, target, &r, depth + 1)),
        }
    }

    /// Fit against a numeric target aligned with `data.rows`.
    pub fn fit(&mut self, data: &Instances, target: &[f64]) -> Result<()> {
        if target.len() != data.len() {
            return Err(MiningError::InvalidParameter(
                "target length must match row count".into(),
            ));
        }
        if data.is_empty() {
            return Err(MiningError::InvalidDataset("no rows".into()));
        }
        let rows: Vec<usize> = (0..data.len()).collect();
        let cols: Vec<ColumnView<'_>> = (0..data.n_attributes()).map(|a| data.col(a)).collect();
        self.root = Some(self.build(&data.attributes, &cols, target, &rows, 0));
        Ok(())
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[Option<f64>]) -> Result<f64> {
        let mut node = self
            .root
            .as_ref()
            .ok_or(MiningError::NotFitted("RegressionTree"))?;
        loop {
            match node {
                Node::Leaf { value } => return Ok(*value),
                Node::Split {
                    attribute,
                    threshold,
                    missing_to,
                    left,
                    right,
                } => {
                    let go_left = match row.get(*attribute).copied().flatten() {
                        Some(v) => v <= *threshold,
                        None => *missing_to == 0,
                    };
                    node = if go_left { left } else { right };
                }
            }
        }
    }

    /// Mean squared error over a dataset.
    pub fn mse(&self, data: &Instances, target: &[f64]) -> Result<f64> {
        let mut buf = Vec::new();
        let mut preds = Vec::with_capacity(data.len());
        for i in 0..data.len() {
            data.fill_row(i, &mut buf);
            preds.push(self.predict_row(&buf)?);
        }
        Ok(preds
            .iter()
            .zip(target)
            .map(|(p, y)| (p - y) * (p - y))
            .sum::<f64>()
            / target.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Attribute;

    fn step_data() -> (Instances, Vec<f64>) {
        // y = 1 for x < 5, y = 10 for x >= 5.
        let rows: Vec<Vec<Option<f64>>> = (0..100).map(|i| vec![Some(i as f64 / 10.0)]).collect();
        let target: Vec<f64> = (0..100)
            .map(|i| if (i as f64 / 10.0) < 5.0 { 1.0 } else { 10.0 })
            .collect();
        (
            Instances::from_rows(
                vec![Attribute {
                    name: "x".into(),
                    kind: AttrKind::Numeric,
                }],
                rows,
                vec![None; 100],
                vec![],
            ),
            target,
        )
    }

    #[test]
    fn fits_step_function() {
        let (d, y) = step_data();
        let mut t = RegressionTree::new(3, 2);
        t.fit(&d, &y).unwrap();
        assert!((t.predict_row(&[Some(1.0)]).unwrap() - 1.0).abs() < 0.5);
        assert!((t.predict_row(&[Some(8.0)]).unwrap() - 10.0).abs() < 0.5);
        assert!(t.mse(&d, &y).unwrap() < 0.1);
    }

    #[test]
    fn depth_limits_model() {
        // A linear target needs many splits; depth caps the node count.
        let rows: Vec<Vec<Option<f64>>> = (0..100).map(|i| vec![Some(i as f64)]).collect();
        let y: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Instances::from_rows(
            vec![Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
            rows,
            vec![None; 100],
            vec![],
        );
        let mut stump = RegressionTree::new(1, 2);
        stump.fit(&d, &y).unwrap();
        assert_eq!(stump.node_count(), 3, "depth 1 = one split + two leaves");
        let mut deep = RegressionTree::new(5, 2);
        deep.fit(&d, &y).unwrap();
        assert!(deep.node_count() > stump.node_count());
        assert!(deep.mse(&d, &y).unwrap() < stump.mse(&d, &y).unwrap());
    }

    #[test]
    fn missing_values_follow_majority_branch() {
        let (d, y) = step_data();
        let mut t = RegressionTree::new(3, 2);
        t.fit(&d, &y).unwrap();
        let p = t.predict_row(&[None]).unwrap();
        assert!((1.0..=10.0).contains(&p));
    }

    #[test]
    fn length_mismatch_rejected() {
        let (d, _) = step_data();
        let mut t = RegressionTree::new(3, 2);
        assert!(t.fit(&d, &[1.0]).is_err());
    }

    #[test]
    fn unfitted_errors() {
        assert!(RegressionTree::new(2, 1).predict_row(&[Some(1.0)]).is_err());
    }
}
