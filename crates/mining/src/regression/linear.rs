//! Ordinary least squares linear regression via the normal equations
//! (with a small ridge term for stability). The baseline the regression
//! tree is compared against.

use crate::error::{MiningError, Result};
use crate::instances::{AttrKind, Instances};
use crate::matrix::Matrix;

/// A fitted linear model: `y = w·x + b` over the numeric attributes.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Ridge regularization strength.
    pub ridge: f64,
    weights: Vec<f64>,
    bias: f64,
    attr_indices: Vec<usize>,
    means: Vec<f64>,
    fitted: bool,
}

impl LinearRegression {
    /// Create an untrained model (tiny default ridge for conditioning).
    pub fn new() -> Self {
        LinearRegression {
            ridge: 1e-8,
            weights: vec![],
            bias: 0.0,
            attr_indices: vec![],
            means: vec![],
            fitted: false,
        }
    }

    /// Fitted coefficients (aligned with the numeric attributes used).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.bias
    }

    /// Fit against a numeric target. Missing feature values are
    /// mean-imputed.
    pub fn fit(&mut self, data: &Instances, target: &[f64]) -> Result<()> {
        if target.len() != data.len() {
            return Err(MiningError::InvalidParameter(
                "target length must match row count".into(),
            ));
        }
        self.attr_indices = data
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AttrKind::Numeric)
            .map(|(i, _)| i)
            .collect();
        if self.attr_indices.is_empty() {
            return Err(MiningError::InvalidDataset(
                "linear regression needs numeric attributes".into(),
            ));
        }
        let all_means = data.numeric_means();
        self.means = self
            .attr_indices
            .iter()
            .map(|&a| all_means[a].unwrap_or(0.0))
            .collect();
        let d = self.attr_indices.len();
        let n = data.len();
        if n <= d {
            return Err(MiningError::InvalidDataset(format!(
                "{n} rows cannot fit {d} coefficients"
            )));
        }
        // Design matrix with bias column, filled one contiguous source
        // column at a time (missing → column mean).
        let mut xs: Vec<Vec<f64>> = vec![vec![0.0f64; d + 1]; n];
        for x in xs.iter_mut() {
            x[d] = 1.0;
        }
        for (ci, (&a, m)) in self.attr_indices.iter().zip(&self.means).enumerate() {
            let values = data.column_values(a);
            let validity = data.column_validity(a);
            for (r, x) in xs.iter_mut().enumerate() {
                x[ci] = if validity.get(r) { values[r] } else { *m };
            }
        }
        let x = Matrix::from_rows(&xs)?;
        let xt = x.transpose();
        let mut xtx = xt.matmul(&x)?;
        for i in 0..=d {
            xtx[(i, i)] += self.ridge;
        }
        let mut xty = vec![0.0; d + 1];
        for (row, y) in xs.iter().zip(target) {
            for (j, v) in row.iter().enumerate() {
                xty[j] += v * y;
            }
        }
        let solution = xtx.solve(&xty)?;
        self.bias = solution[d];
        self.weights = solution[..d].to_vec();
        self.fitted = true;
        Ok(())
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[Option<f64>]) -> Result<f64> {
        if !self.fitted {
            return Err(MiningError::NotFitted("LinearRegression"));
        }
        let mut y = self.bias;
        for ((&a, w), m) in self.attr_indices.iter().zip(&self.weights).zip(&self.means) {
            y += w * row.get(a).copied().flatten().unwrap_or(*m);
        }
        Ok(y)
    }

    /// R² on a dataset.
    pub fn r_squared(&self, data: &Instances, target: &[f64]) -> Result<f64> {
        let mut buf = Vec::new();
        let mut preds = Vec::with_capacity(data.len());
        for i in 0..data.len() {
            data.fill_row(i, &mut buf);
            preds.push(self.predict_row(&buf)?);
        }
        let mean_y = target.iter().sum::<f64>() / target.len().max(1) as f64;
        let ss_res: f64 = preds
            .iter()
            .zip(target)
            .map(|(p, y)| (y - p) * (y - p))
            .sum();
        let ss_tot: f64 = target.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
        if ss_tot == 0.0 {
            return Ok(1.0);
        }
        Ok(1.0 - ss_res / ss_tot)
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        LinearRegression::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Attribute;

    fn linear_data() -> (Instances, Vec<f64>) {
        // y = 2x1 - 3x2 + 5.
        let mut rows = Vec::new();
        let mut target = Vec::new();
        for i in 0..50 {
            let x1 = i as f64 * 0.3;
            let x2 = ((i * 7) % 13) as f64;
            rows.push(vec![Some(x1), Some(x2)]);
            target.push(2.0 * x1 - 3.0 * x2 + 5.0);
        }
        (
            Instances::from_rows(
                vec![
                    Attribute {
                        name: "x1".into(),
                        kind: AttrKind::Numeric,
                    },
                    Attribute {
                        name: "x2".into(),
                        kind: AttrKind::Numeric,
                    },
                ],
                rows,
                vec![None; 50],
                vec![],
            ),
            target,
        )
    }

    #[test]
    fn recovers_exact_coefficients() {
        let (d, y) = linear_data();
        let mut m = LinearRegression::new();
        m.fit(&d, &y).unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-6);
        assert!((m.coefficients()[1] + 3.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-5);
        assert!(m.r_squared(&d, &y).unwrap() > 0.9999);
    }

    #[test]
    fn predicts_new_points() {
        let (d, y) = linear_data();
        let mut m = LinearRegression::new();
        m.fit(&d, &y).unwrap();
        let p = m.predict_row(&[Some(10.0), Some(1.0)]).unwrap();
        assert!((p - 22.0).abs() < 1e-5);
    }

    #[test]
    fn missing_values_mean_imputed() {
        let (d, y) = linear_data();
        let mut m = LinearRegression::new();
        m.fit(&d, &y).unwrap();
        let p = m.predict_row(&[None, Some(0.0)]).unwrap();
        assert!(p.is_finite());
    }

    #[test]
    fn too_few_rows_rejected() {
        let d = Instances::from_rows(
            vec![Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
            vec![vec![Some(1.0)]],
            vec![None],
            vec![],
        );
        let mut m = LinearRegression::new();
        assert!(m.fit(&d, &[1.0]).is_err());
    }

    #[test]
    fn unfitted_errors() {
        assert!(LinearRegression::new().predict_row(&[Some(1.0)]).is_err());
    }
}
