//! Regression models.

pub mod cart;
pub mod linear;

pub use cart::RegressionTree;
pub use linear::LinearRegression;
