//! Apriori association-rule mining with the quality measures of
//! Berti-Equille \[2\]: support, confidence, lift, leverage, conviction,
//! and a composite rule-quality score.
//!
//! Transactions are derived from a table by treating each row's
//! `column=value` pairs as items (numeric columns should be discretized
//! first — see [`crate::preprocess::discretize`]).

use crate::error::{MiningError, Result};
use openbi_table::{Table, Value};
use std::collections::HashMap;

/// An item: a `column=value` pair, interned as an index into the miner's
/// item dictionary.
pub type ItemId = usize;

/// Frequent itemsets with supports, plus the item dictionary that
/// renders item ids back to `column=value` strings.
pub type FrequentItemsets = (Vec<String>, Vec<(Vec<ItemId>, f64)>);

/// A mined association rule with its quality measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Antecedent items (rendered strings).
    pub antecedent: Vec<String>,
    /// Consequent items (rendered strings).
    pub consequent: Vec<String>,
    /// Joint support `P(A ∪ C)`.
    pub support: f64,
    /// Confidence `P(C | A)`.
    pub confidence: f64,
    /// Lift `P(C|A) / P(C)`.
    pub lift: f64,
    /// Leverage `P(A∪C) − P(A)P(C)`.
    pub leverage: f64,
    /// Conviction `(1 − P(C)) / (1 − conf)` (`f64::INFINITY` for
    /// conf = 1).
    pub conviction: f64,
}

impl Rule {
    /// Composite quality score in `[0,1]`: the geometric mean of
    /// confidence, normalized lift and support share — a simple instance
    /// of the multi-measure rule scoring advocated by Berti-Equille \[2\].
    pub fn quality_score(&self) -> f64 {
        let lift_component = (1.0 - 1.0 / self.lift.max(1.0)).clamp(0.0, 1.0);
        let support_component = (self.support * 10.0).min(1.0);
        (self.confidence * lift_component * support_component)
            .max(0.0)
            .powf(1.0 / 3.0)
    }

    /// Render as `a & b => c (supp, conf, lift)`.
    pub fn render(&self) -> String {
        format!(
            "{} => {} (supp={:.3}, conf={:.3}, lift={:.2})",
            self.antecedent.join(" & "),
            self.consequent.join(" & "),
            self.support,
            self.confidence,
            self.lift
        )
    }
}

/// Apriori miner configuration.
#[derive(Debug, Clone)]
pub struct Apriori {
    /// Minimum joint support for frequent itemsets.
    pub min_support: f64,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Maximum itemset size explored.
    pub max_len: usize,
}

impl Default for Apriori {
    fn default() -> Self {
        Apriori {
            min_support: 0.1,
            min_confidence: 0.6,
            max_len: 4,
        }
    }
}

fn transactions_from_table(table: &Table) -> (Vec<String>, Vec<Vec<ItemId>>) {
    let mut dict: Vec<String> = Vec::new();
    let mut index: HashMap<String, ItemId> = HashMap::new();
    let mut txs: Vec<Vec<ItemId>> = Vec::with_capacity(table.n_rows());
    for row in 0..table.n_rows() {
        let mut tx = Vec::new();
        for col in table.columns() {
            let v = col.get(row).expect("in-bounds");
            if let Value::Null = v {
                continue;
            }
            let rendered = v.to_string();
            // Discretized columns already embed "col=" in their labels;
            // avoid doubling the prefix.
            let item = if rendered.starts_with(&format!("{}=", col.name())) {
                rendered
            } else {
                format!("{}={rendered}", col.name())
            };
            let id = *index.entry(item.clone()).or_insert_with(|| {
                dict.push(item);
                dict.len() - 1
            });
            tx.push(id);
        }
        tx.sort_unstable();
        tx.dedup();
        txs.push(tx);
    }
    (dict, txs)
}

fn is_subset(needle: &[ItemId], haystack: &[ItemId]) -> bool {
    // Both sorted.
    let mut it = haystack.iter();
    'outer: for n in needle {
        for h in it.by_ref() {
            if h == n {
                continue 'outer;
            }
            if h > n {
                return false;
            }
        }
        return false;
    }
    true
}

impl Apriori {
    /// Mine frequent itemsets; returns `(itemset, support)` pairs with
    /// itemsets as sorted item-id vectors, plus the item dictionary.
    pub fn frequent_itemsets(&self, table: &Table) -> Result<FrequentItemsets> {
        if !(0.0..=1.0).contains(&self.min_support) {
            return Err(MiningError::InvalidParameter(
                "min_support must be in [0,1]".into(),
            ));
        }
        let (dict, txs) = transactions_from_table(table);
        let n = txs.len();
        if n == 0 {
            return Ok((dict, vec![]));
        }
        let min_count = (self.min_support * n as f64).ceil().max(1.0) as usize;
        // L1.
        let mut item_counts: HashMap<ItemId, usize> = HashMap::new();
        for tx in &txs {
            for &i in tx {
                *item_counts.entry(i).or_insert(0) += 1;
            }
        }
        let mut current: Vec<Vec<ItemId>> = item_counts
            .iter()
            .filter(|(_, &c)| c >= min_count)
            .map(|(&i, _)| vec![i])
            .collect();
        current.sort();
        let mut all: Vec<(Vec<ItemId>, f64)> = current
            .iter()
            .map(|s| (s.clone(), item_counts[&s[0]] as f64 / n as f64))
            .collect();
        let mut size = 1;
        while !current.is_empty() && size < self.max_len {
            size += 1;
            // Candidate generation: join sets sharing a (size-2)-prefix.
            let mut candidates: Vec<Vec<ItemId>> = Vec::new();
            for i in 0..current.len() {
                for j in (i + 1)..current.len() {
                    let a = &current[i];
                    let b = &current[j];
                    if a[..size - 2] != b[..size - 2] {
                        continue;
                    }
                    let mut cand = a.clone();
                    cand.push(b[size - 2]);
                    cand.sort_unstable();
                    // Prune: all (size-1)-subsets must be frequent.
                    let all_frequent = (0..cand.len()).all(|skip| {
                        let sub: Vec<ItemId> = cand
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| *k != skip)
                            .map(|(_, &v)| v)
                            .collect();
                        current.binary_search(&sub).is_ok()
                    });
                    if all_frequent && !candidates.contains(&cand) {
                        candidates.push(cand);
                    }
                }
            }
            // Count supports.
            let mut next: Vec<(Vec<ItemId>, f64)> = Vec::new();
            for cand in candidates {
                let count = txs.iter().filter(|tx| is_subset(&cand, tx)).count();
                if count >= min_count {
                    next.push((cand, count as f64 / n as f64));
                }
            }
            current = next.iter().map(|(s, _)| s.clone()).collect();
            current.sort();
            all.extend(next);
        }
        Ok((dict, all))
    }

    /// Mine rules from the frequent itemsets (single-item consequents,
    /// the classic formulation). Rules are sorted by descending
    /// confidence, then lift.
    pub fn mine_rules(&self, table: &Table) -> Result<Vec<Rule>> {
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(MiningError::InvalidParameter(
                "min_confidence must be in [0,1]".into(),
            ));
        }
        let (dict, itemsets) = self.frequent_itemsets(table)?;
        let support_of: HashMap<Vec<ItemId>, f64> = itemsets.iter().cloned().collect();
        let mut rules = Vec::new();
        for (itemset, support) in &itemsets {
            if itemset.len() < 2 {
                continue;
            }
            for (pos, &consequent) in itemset.iter().enumerate() {
                let antecedent: Vec<ItemId> = itemset
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != pos)
                    .map(|(_, &v)| v)
                    .collect();
                let Some(&ant_support) = support_of.get(&antecedent) else {
                    continue;
                };
                let Some(&cons_support) = support_of.get(&vec![consequent]) else {
                    continue;
                };
                let confidence = support / ant_support;
                if confidence < self.min_confidence {
                    continue;
                }
                let lift = confidence / cons_support;
                let leverage = support - ant_support * cons_support;
                let conviction = if (1.0 - confidence).abs() < 1e-12 {
                    f64::INFINITY
                } else {
                    (1.0 - cons_support) / (1.0 - confidence)
                };
                rules.push(Rule {
                    antecedent: antecedent.iter().map(|&i| dict[i].clone()).collect(),
                    consequent: vec![dict[consequent].clone()],
                    support: *support,
                    confidence,
                    lift,
                    leverage,
                    conviction,
                });
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.lift.total_cmp(&a.lift))
                .then(a.antecedent.cmp(&b.antecedent))
        });
        Ok(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    /// The classic market-basket toy: bread & butter go together.
    fn basket() -> Table {
        let bread = ["y", "y", "y", "y", "n", "y", "y", "n", "y", "y"];
        let butter = ["y", "y", "y", "y", "n", "y", "y", "y", "y", "y"];
        let milk = ["y", "n", "y", "n", "y", "n", "y", "n", "y", "n"];
        Table::new(vec![
            Column::from_str_values("bread", bread),
            Column::from_str_values("butter", butter),
            Column::from_str_values("milk", milk),
        ])
        .unwrap()
    }

    #[test]
    fn finds_frequent_itemsets() {
        let ap = Apriori {
            min_support: 0.5,
            ..Default::default()
        };
        let (dict, sets) = ap.frequent_itemsets(&basket()).unwrap();
        assert!(!sets.is_empty());
        // bread=y alone: 8/10.
        let bread_y = dict.iter().position(|d| d == "bread=y").unwrap();
        let (_, supp) = sets.iter().find(|(s, _)| s == &vec![bread_y]).unwrap();
        assert!((supp - 0.8).abs() < 1e-12);
        // Pair {bread=y, butter=y}: 8/10.
        let butter_y = dict.iter().position(|d| d == "butter=y").unwrap();
        let mut pair = vec![bread_y, butter_y];
        pair.sort_unstable();
        assert!(sets
            .iter()
            .any(|(s, supp)| s == &pair && (*supp - 0.8).abs() < 1e-12));
    }

    #[test]
    fn support_is_antimonotone() {
        let ap = Apriori {
            min_support: 0.2,
            ..Default::default()
        };
        let (_, sets) = ap.frequent_itemsets(&basket()).unwrap();
        let support_of: HashMap<Vec<ItemId>, f64> = sets.iter().cloned().collect();
        for (set, supp) in &sets {
            if set.len() < 2 {
                continue;
            }
            for skip in 0..set.len() {
                let sub: Vec<ItemId> = set
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != skip)
                    .map(|(_, &v)| v)
                    .collect();
                let sub_supp = support_of.get(&sub).copied().unwrap_or(0.0);
                assert!(
                    sub_supp >= *supp - 1e-12,
                    "subset support {sub_supp} < superset {supp}"
                );
            }
        }
    }

    #[test]
    fn mines_the_bread_butter_rule() {
        let ap = Apriori {
            min_support: 0.5,
            min_confidence: 0.9,
            max_len: 2,
        };
        let rules = ap.mine_rules(&basket()).unwrap();
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec!["bread=y"] && r.consequent == vec!["butter=y"])
            .expect("bread=y => butter=y should be mined");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert!((rule.support - 0.8).abs() < 1e-12);
        assert!((rule.lift - 1.0 / 0.9).abs() < 1e-9);
        assert!(rule.conviction.is_infinite());
        assert!(rule.leverage > 0.0);
    }

    #[test]
    fn rules_respect_confidence_threshold() {
        let ap = Apriori {
            min_support: 0.3,
            min_confidence: 0.8,
            max_len: 3,
        };
        for r in ap.mine_rules(&basket()).unwrap() {
            assert!(r.confidence >= 0.8);
        }
    }

    #[test]
    fn nulls_skipped_in_transactions() {
        let t = Table::new(vec![Column::from_opt_str(
            "a",
            [Some("x".to_string()), None],
        )])
        .unwrap();
        let ap = Apriori {
            min_support: 0.4,
            ..Default::default()
        };
        let (dict, sets) = ap.frequent_itemsets(&t).unwrap();
        assert_eq!(dict.len(), 1);
        assert_eq!(sets.len(), 1);
        assert!((sets[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quality_score_ranks_strong_rules_higher() {
        let strong = Rule {
            antecedent: vec!["a".into()],
            consequent: vec!["b".into()],
            support: 0.4,
            confidence: 0.95,
            lift: 2.0,
            leverage: 0.2,
            conviction: 5.0,
        };
        let weak = Rule {
            antecedent: vec!["a".into()],
            consequent: vec!["c".into()],
            support: 0.05,
            confidence: 0.6,
            lift: 1.05,
            leverage: 0.01,
            conviction: 1.1,
        };
        assert!(strong.quality_score() > weak.quality_score());
        assert!(strong.quality_score() <= 1.0);
    }

    #[test]
    fn invalid_thresholds_rejected() {
        let t = basket();
        let bad = Apriori {
            min_support: 1.5,
            ..Default::default()
        };
        assert!(bad.frequent_itemsets(&t).is_err());
        let bad = Apriori {
            min_confidence: -0.1,
            ..Default::default()
        };
        assert!(bad.mine_rules(&t).is_err());
    }

    #[test]
    fn render_mentions_metrics() {
        let ap = Apriori {
            min_support: 0.5,
            min_confidence: 0.9,
            max_len: 2,
        };
        let rules = ap.mine_rules(&basket()).unwrap();
        assert!(rules[0].render().contains("conf="));
    }
}
