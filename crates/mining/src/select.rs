//! Attribute (feature) selection — the other half of the KDD process's
//! "algorithms and attributes selection phase" (paper §2). Three
//! methods:
//!
//! * [`information_gain_ranking`] — filter: rank attributes by mutual
//!   information with the class (numeric attributes binned).
//! * [`cfs_select`] — correlation-based subset selection (CFS-style):
//!   greedily grow a subset maximizing class-relevance while penalizing
//!   inter-attribute redundancy — exactly the defect the paper's §3.1
//!   redundancy example warns about.
//! * [`wrapper_select`] — wrapper: greedy forward selection scored by
//!   cross-validated accuracy of a caller-chosen algorithm. Candidate
//!   subsets are evaluated through attribute-masked views — no
//!   projected copies of the dataset are materialized.

use crate::classify::AlgorithmSpec;
use crate::error::{MiningError, Result};
use crate::eval::crossval::{cross_validate_view, CrossValOptions};
use crate::instances::{AttrKind, Instances, InstancesView};

const GAIN_BINS: usize = 8;

/// Discretize one attribute column into bucket ids for MI estimation
/// (missing = its own bucket). One pass down the contiguous column.
fn buckets(data: &InstancesView<'_>, attr: usize) -> (Vec<usize>, usize) {
    let col = data.col(attr);
    match &data.attribute(attr).kind {
        AttrKind::Nominal(dict) => {
            let k = dict.len().max(1);
            let ids = (0..data.len())
                .map(|i| col.get(i).map(|v| (v as usize).min(k - 1)).unwrap_or(k))
                .collect();
            (ids, k + 1)
        }
        AttrKind::Numeric => {
            let vals: Vec<f64> = (0..data.len()).filter_map(|i| col.get(i)).collect();
            if vals.is_empty() {
                return (vec![GAIN_BINS; data.len()], GAIN_BINS + 1);
            }
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let width = ((hi - lo) / GAIN_BINS as f64).max(1e-12);
            let ids = (0..data.len())
                .map(|i| {
                    col.get(i)
                        .map(|v| (((v - lo) / width) as usize).min(GAIN_BINS - 1))
                        .unwrap_or(GAIN_BINS)
                })
                .collect();
            (ids, GAIN_BINS + 1)
        }
    }
}

fn entropy_of_counts(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Information gain of one attribute with respect to the class, over
/// labeled rows.
pub fn information_gain(data: &Instances, attr: usize) -> Result<f64> {
    if attr >= data.n_attributes() {
        return Err(MiningError::InvalidParameter(format!(
            "attribute index {attr} out of range"
        )));
    }
    let labeled = data.labeled_indices();
    if labeled.is_empty() || data.n_classes() < 2 {
        return Err(MiningError::InvalidDataset(
            "information gain needs labeled rows with >= 2 classes".into(),
        ));
    }
    let (bucket_ids, n_buckets) = buckets(&data.view(), attr);
    let n_classes = data.n_classes();
    let mut class_counts = vec![0usize; n_classes];
    let mut joint = vec![vec![0usize; n_classes]; n_buckets];
    let mut bucket_totals = vec![0usize; n_buckets];
    for &i in &labeled {
        let c = data.labels[i].expect("labeled");
        class_counts[c] += 1;
        joint[bucket_ids[i]][c] += 1;
        bucket_totals[bucket_ids[i]] += 1;
    }
    let h_class = entropy_of_counts(&class_counts);
    let n = labeled.len() as f64;
    let h_cond: f64 = joint
        .iter()
        .zip(&bucket_totals)
        .map(|(counts, &total)| (total as f64 / n) * entropy_of_counts(counts))
        .sum();
    Ok((h_class - h_cond).max(0.0))
}

/// Rank all attributes by information gain, descending:
/// `(attribute index, name, gain)`.
pub fn information_gain_ranking(data: &Instances) -> Result<Vec<(usize, String, f64)>> {
    let mut out: Vec<(usize, String, f64)> = (0..data.n_attributes())
        .map(|a| {
            let gain = information_gain(data, a)?;
            Ok((a, data.attributes[a].name.clone(), gain))
        })
        .collect::<Result<Vec<_>>>()?;
    out.sort_by(|x, y| y.2.total_cmp(&x.2).then(x.0.cmp(&y.0)));
    Ok(out)
}

/// Symmetrical uncertainty between two bucketed variables — the
/// normalized MI used by CFS.
fn symmetrical_uncertainty(ids_a: &[usize], ka: usize, ids_b: &[usize], kb: usize) -> f64 {
    let n = ids_a.len();
    if n == 0 {
        return 0.0;
    }
    let mut ca = vec![0usize; ka];
    let mut cb = vec![0usize; kb];
    let mut joint = vec![vec![0usize; kb]; ka];
    for i in 0..n {
        ca[ids_a[i]] += 1;
        cb[ids_b[i]] += 1;
        joint[ids_a[i]][ids_b[i]] += 1;
    }
    let ha = entropy_of_counts(&ca);
    let hb = entropy_of_counts(&cb);
    if ha + hb == 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    let h_cond: f64 = joint
        .iter()
        .enumerate()
        .map(|(a, row)| (ca[a] as f64 / nf) * entropy_of_counts(row))
        .sum();
    let mi = (hb - h_cond).max(0.0);
    2.0 * mi / (ha + hb)
}

/// CFS-style greedy subset selection: maximize
/// `merit = k·r̄_cf / sqrt(k + k(k−1)·r̄_ff)` where `r̄_cf` is mean
/// attribute–class SU and `r̄_ff` mean attribute–attribute SU. Returns
/// selected attribute indices in selection order.
pub fn cfs_select(data: &Instances, max_features: usize) -> Result<Vec<usize>> {
    let labeled = data.labeled_indices();
    if labeled.is_empty() || data.n_classes() < 2 {
        return Err(MiningError::InvalidDataset(
            "CFS needs labeled rows with >= 2 classes".into(),
        ));
    }
    // Row-masked view onto the labeled rows; bucketing reads straight
    // through the mask, so nothing is copied.
    let view = data.view().select_rows_owned(labeled);
    let n_attrs = view.n_attributes();
    let class_ids: Vec<usize> = (0..view.len())
        .map(|i| view.label(i).expect("labeled"))
        .collect();
    let n_classes = view.n_classes();
    let attr_buckets: Vec<(Vec<usize>, usize)> = (0..n_attrs).map(|a| buckets(&view, a)).collect();
    let class_su: Vec<f64> = attr_buckets
        .iter()
        .map(|(ids, k)| symmetrical_uncertainty(ids, *k, &class_ids, n_classes))
        .collect();
    let pair_su = |a: usize, b: usize| -> f64 {
        symmetrical_uncertainty(
            &attr_buckets[a].0,
            attr_buckets[a].1,
            &attr_buckets[b].0,
            attr_buckets[b].1,
        )
    };
    let merit = |subset: &[usize]| -> f64 {
        let k = subset.len() as f64;
        if k == 0.0 {
            return 0.0;
        }
        let rcf = subset.iter().map(|&a| class_su[a]).sum::<f64>() / k;
        let mut rff = 0.0;
        let mut pairs = 0.0;
        for (i, &a) in subset.iter().enumerate() {
            for &b in &subset[i + 1..] {
                rff += pair_su(a, b);
                pairs += 1.0;
            }
        }
        let rff = if pairs > 0.0 { rff / pairs } else { 0.0 };
        k * rcf / (k + k * (k - 1.0) * rff).sqrt()
    };
    let mut selected: Vec<usize> = Vec::new();
    let cap = max_features.min(n_attrs).max(1);
    loop {
        let current = merit(&selected);
        let best = (0..n_attrs)
            .filter(|a| !selected.contains(a))
            .map(|a| {
                let mut candidate = selected.clone();
                candidate.push(a);
                (a, merit(&candidate))
            })
            .max_by(|x, y| x.1.total_cmp(&y.1));
        match best {
            Some((a, m)) if m > current + 1e-12 && selected.len() < cap => selected.push(a),
            _ => break,
        }
    }
    if selected.is_empty() {
        // Degenerate data: fall back to the single most relevant attribute.
        let best = class_su
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        selected.push(best);
    }
    Ok(selected)
}

/// Greedy forward wrapper selection: add the attribute that most
/// improves cross-validated accuracy of `spec`, stopping when no
/// attribute improves it by more than `min_improvement`. Each candidate
/// subset is scored through an attribute-masked view.
pub fn wrapper_select(
    data: &Instances,
    spec: &AlgorithmSpec,
    folds: usize,
    seed: u64,
    min_improvement: f64,
) -> Result<Vec<usize>> {
    let n_attrs = data.n_attributes();
    let opts = CrossValOptions::default();
    let mut selected: Vec<usize> = Vec::new();
    let mut best_acc = 0.0;
    loop {
        let mut best_step: Option<(usize, f64)> = None;
        for a in 0..n_attrs {
            if selected.contains(&a) {
                continue;
            }
            let mut subset = selected.clone();
            subset.push(a);
            let projected = data.view().select_attrs_owned(subset);
            let acc = cross_validate_view(&projected, spec, folds, seed, &opts)?.accuracy();
            if best_step.map(|(_, b)| acc > b).unwrap_or(true) {
                best_step = Some((a, acc));
            }
        }
        match best_step {
            Some((a, acc)) if acc > best_acc + min_improvement => {
                selected.push(a);
                best_acc = acc;
            }
            _ => break,
        }
    }
    if selected.is_empty() && n_attrs > 0 {
        selected.push(0);
    }
    Ok(selected)
}

/// Project a dataset onto a subset of attributes (selection order
/// kept), materializing a new columnar dataset.
pub fn project(data: &Instances, attrs: &[usize]) -> Instances {
    data.view().select_attrs(attrs).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Attribute;

    /// signal predicts the class; noise is irrelevant; echo duplicates
    /// signal (redundant).
    fn data() -> Instances {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let signal = if i % 2 == 0 { 0.0 } else { 10.0 };
            let noise = ((i * 37) % 17) as f64;
            let echo = signal + 0.01 * (i % 3) as f64;
            rows.push(vec![Some(noise), Some(signal), Some(echo)]);
            labels.push(Some(i % 2));
        }
        Instances::from_rows(
            vec![
                Attribute {
                    name: "noise".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "signal".into(),
                    kind: AttrKind::Numeric,
                },
                Attribute {
                    name: "echo".into(),
                    kind: AttrKind::Numeric,
                },
            ],
            rows,
            labels,
            vec!["even".into(), "odd".into()],
        )
    }

    #[test]
    fn gain_ranks_signal_over_noise() {
        let ranking = information_gain_ranking(&data()).unwrap();
        assert_eq!(ranking[0].1, "signal");
        let gain_signal = ranking[0].2;
        let gain_noise = ranking.iter().find(|r| r.1 == "noise").unwrap().2;
        assert!(gain_signal > 0.9, "signal gain {gain_signal}");
        assert!(gain_noise < 0.2, "noise gain {gain_noise}");
    }

    #[test]
    fn gain_of_perfect_attribute_equals_class_entropy() {
        let d = data();
        let g = information_gain(&d, 1).unwrap();
        assert!((g - 1.0).abs() < 1e-9, "balanced binary entropy is 1 bit");
    }

    #[test]
    fn cfs_keeps_signal_drops_redundant_echo() {
        let selected = cfs_select(&data(), 3).unwrap();
        // signal and echo are interchangeable carriers of the same
        // information; CFS must take exactly one of them, never both,
        // and never the noise attribute.
        let informative = selected.iter().filter(|a| **a == 1 || **a == 2).count();
        assert_eq!(informative, 1, "selected {selected:?}");
        assert!(!selected.contains(&0), "noise must not be selected");
    }

    #[test]
    fn wrapper_finds_minimal_subset() {
        let selected = wrapper_select(&data(), &AlgorithmSpec::NaiveBayes, 3, 1, 0.005).unwrap();
        // signal (or its echo) alone is enough.
        assert_eq!(selected.len(), 1, "selected {selected:?}");
        assert!(selected[0] == 1 || selected[0] == 2);
    }

    #[test]
    fn project_keeps_rows_and_labels() {
        let d = data();
        let p = project(&d, &[2, 0]);
        assert_eq!(p.n_attributes(), 2);
        assert_eq!(p.attributes[0].name, "echo");
        assert_eq!(p.len(), d.len());
        assert_eq!(p.labels, d.labels);
        assert_eq!(p.get(0, 1), d.get(0, 0));
    }

    #[test]
    fn unlabeled_data_rejected() {
        let mut d = data();
        d.labels = vec![None; d.len()];
        assert!(information_gain(&d, 0).is_err());
        assert!(cfs_select(&d, 2).is_err());
    }

    #[test]
    fn out_of_range_attribute_rejected() {
        assert!(information_gain(&data(), 99).is_err());
    }

    #[test]
    fn missing_values_get_their_own_bucket() {
        let mut d = data();
        for i in 0..10 {
            d.set(i, 1, None);
        }
        // Still works; an informative attribute (echo now carries the
        // cleaner copy) still ranks first.
        let ranking = information_gain_ranking(&d).unwrap();
        assert!(ranking[0].1 == "signal" || ranking[0].1 == "echo");
        assert_ne!(ranking[0].1, "noise");
    }
}
