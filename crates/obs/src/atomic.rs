//! A lock-free `f64` cell built on `AtomicU64` bit transmutation —
//! histograms and gauges need floating-point sums/extrema without a
//! mutex on the record path.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomic `f64` stored as IEEE-754 bits in an `AtomicU64`.
///
/// All read-modify-write operations are compare-and-swap loops with
/// relaxed ordering: metric cells are independent statistics, not
/// synchronization points.
pub(crate) struct AtomicF64(AtomicU64);

impl AtomicF64 {
    pub(crate) fn new(value: f64) -> Self {
        AtomicF64(AtomicU64::new(value.to_bits()))
    }

    pub(crate) fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub(crate) fn store(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn fetch_add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn fetch_min(&self, value: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(current) <= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn fetch_max(&self, value: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(current) >= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

impl std::fmt::Debug for AtomicF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.load())
    }
}
