//! The process-global registry slot and its recording helpers.
//!
//! Deep call paths (the grid executor's worker loop, the advisor's
//! serving path) record through these free functions instead of
//! threading a registry handle through every signature. The fast path
//! when nothing is installed is a single relaxed atomic load, so
//! instrumentation can stay unconditionally compiled in.
//!
//! ```
//! use std::sync::Arc;
//! use openbi_obs::MetricsRegistry;
//!
//! assert!(!openbi_obs::is_installed());
//! openbi_obs::counter_add("ignored_total", 1); // no registry: no-op
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! openbi_obs::install(Arc::clone(&registry));
//! openbi_obs::counter_add("cells_total", 2);
//! openbi_obs::observe("cell.seconds", 0.003);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["cells_total"], 2);
//!
//! openbi_obs::uninstall();
//! assert!(!openbi_obs::is_installed());
//! ```

use crate::registry::MetricsRegistry;
use crate::span::Span;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<MetricsRegistry>>> = RwLock::new(None);

/// Install `registry` as the process-global registry. Replaces any
/// previously installed one.
pub fn install(registry: Arc<MetricsRegistry>) {
    *GLOBAL.write().unwrap_or_else(PoisonError::into_inner) = Some(registry);
    ENABLED.store(true, Ordering::Release);
}

/// Remove and return the process-global registry, disabling global
/// recording.
pub fn uninstall() -> Option<Arc<MetricsRegistry>> {
    ENABLED.store(false, Ordering::Release);
    GLOBAL
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// True when a global registry is installed.
pub fn is_installed() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The currently installed global registry, if any. The single relaxed
/// load on the miss path is what makes uninstrumented runs free.
pub fn global() -> Option<Arc<MetricsRegistry>> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    GLOBAL
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Add `delta` to the named counter on the global registry (no-op when
/// none is installed).
pub fn counter_add(name: &str, delta: u64) {
    if let Some(registry) = global() {
        registry.counter(name).add(delta);
    }
}

/// Set the named gauge on the global registry (no-op when none is
/// installed).
pub fn gauge_set(name: &str, value: f64) {
    if let Some(registry) = global() {
        registry.gauge(name).set(value);
    }
}

/// Record one observation into the named histogram on the global
/// registry (no-op when none is installed). Histograms created this way
/// use the default latency buckets; use
/// [`MetricsRegistry::histogram_with`] up front for count-style
/// metrics.
pub fn observe(name: &str, value: f64) {
    if let Some(registry) = global() {
        registry.histogram(name).record(value);
    }
}

/// Record a duration (as seconds) into the named histogram on the
/// global registry (no-op when none is installed).
pub fn observe_duration(name: &str, duration: Duration) {
    if let Some(registry) = global() {
        registry.histogram(name).record_duration(duration);
    }
}

/// Start an RAII [`Span`] recording into the named histogram on the
/// global registry; inert when none is installed.
pub fn span(name: &str) -> Span {
    Span::start(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The single test that touches the global slot (other tests use
    /// local registries so this cannot race within the test binary).
    #[test]
    fn install_record_uninstall_round_trip() {
        assert!(!is_installed());
        counter_add("before_total", 1); // dropped: nothing installed
        let registry = Arc::new(MetricsRegistry::new());
        install(Arc::clone(&registry));
        assert!(is_installed());
        counter_add("cells_total", 3);
        gauge_set("depth", 2.0);
        observe("lat.seconds", 0.01);
        observe_duration("lat.seconds", Duration::from_millis(1));
        {
            let _span = span("span.seconds");
        }
        let removed = uninstall().expect("a registry was installed");
        assert!(Arc::ptr_eq(&removed, &registry));
        assert!(!is_installed());
        counter_add("cells_total", 100); // dropped: nothing installed
        let snap = registry.snapshot();
        assert!(!snap.counters.contains_key("before_total"));
        assert_eq!(snap.counters["cells_total"], 3);
        assert_eq!(snap.gauges["depth"], 2.0);
        assert_eq!(snap.histograms["lat.seconds"].count, 2);
        assert_eq!(snap.histograms["span.seconds"].count, 1);
    }
}
