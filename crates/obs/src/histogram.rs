//! Fixed-bucket histograms with lock-free recording.
//!
//! A [`Histogram`] owns an ascending list of finite bucket upper bounds
//! plus one implicit overflow bucket (`+Inf`). Recording a value is a
//! binary search followed by a handful of relaxed atomic increments —
//! no locks, no allocation — so histograms are safe to hammer from the
//! experiment grid's worker pool and the advisor's serving path alike.
//!
//! Two bucket layouts cover every metric OpenBI emits (the 1-2-5 decade
//! scheme documented in DESIGN.md §9):
//!
//! * [`default_latency_buckets`] — seconds, `1 µs … 60 s`.
//! * [`default_count_buckets`] — dimensionless counts, `0 … 100 000`.
//!
//! Quantiles (p50/p90/p99) are estimated at snapshot time by linear
//! interpolation inside the bucket that holds the target rank, clamped
//! to the observed min/max; see
//! [`HistogramSnapshot::quantile`](crate::snapshot::HistogramSnapshot::quantile).

use crate::atomic::AtomicF64;
use crate::snapshot::{Bucket, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The default latency bucket upper bounds, in seconds: a 1-2-5 decade
/// sweep from one microsecond to one second, then 10 s, 30 s, 60 s.
///
/// ```
/// let b = openbi_obs::default_latency_buckets();
/// assert_eq!(b.first().copied(), Some(1e-6));
/// assert_eq!(b.last().copied(), Some(60.0));
/// assert!(b.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn default_latency_buckets() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(24);
    for exp in -6..0i32 {
        for mantissa in [1.0, 2.0, 5.0] {
            bounds.push(mantissa * 10f64.powi(exp));
        }
    }
    bounds.extend([1.0, 2.0, 5.0, 10.0, 30.0, 60.0]);
    bounds
}

/// The default bucket upper bounds for dimensionless counts (queue
/// depths, batch sizes, candidate counts): `0`, then a 1-2-5 decade
/// sweep up to `100 000`.
///
/// ```
/// let b = openbi_obs::default_count_buckets();
/// assert_eq!(&b[..4], &[0.0, 1.0, 2.0, 5.0]);
/// assert_eq!(b.last().copied(), Some(100_000.0));
/// ```
pub fn default_count_buckets() -> Vec<f64> {
    let mut bounds = vec![0.0];
    for exp in 0..5i32 {
        for mantissa in [1.0, 2.0, 5.0] {
            bounds.push(mantissa * 10f64.powi(exp));
        }
    }
    bounds.push(100_000.0);
    bounds
}

/// Exponentially spaced bucket upper bounds: `start`, `start * factor`,
/// … (`count` bounds in total). `start` must be positive and `factor`
/// greater than 1.
///
/// ```
/// let b = openbi_obs::exponential_buckets(1.0, 2.0, 4);
/// assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
/// ```
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "exponential_buckets: start must be positive");
    assert!(factor > 1.0, "exponential_buckets: factor must exceed 1");
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    bounds
}

/// A fixed-bucket histogram: atomic per-bucket counts plus running
/// count, sum, min, and max.
///
/// Values land in the first bucket whose upper bound is `>=` the value
/// (`le` semantics); values above the last bound land in the implicit
/// overflow bucket. Non-finite values are ignored.
///
/// ```
/// use openbi_obs::Histogram;
///
/// let h = Histogram::new(vec![0.1, 1.0, 10.0]);
/// h.record(0.05);
/// h.record(0.5);
/// h.record(99.0); // overflow bucket
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 3);
/// assert_eq!(snap.buckets.len(), 4);
/// assert_eq!(snap.buckets[0].count, 1);
/// assert_eq!(snap.buckets[3].count, 1);
/// ```
pub struct Histogram {
    /// Ascending, finite upper bounds. The overflow bucket is implicit.
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl Histogram {
    /// Build a histogram from explicit upper bounds. Bounds are sorted,
    /// deduplicated, and filtered to finite values; at least one finite
    /// bound is required.
    pub fn new(mut bounds: Vec<f64>) -> Histogram {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        assert!(
            !bounds.is_empty(),
            "Histogram::new: at least one finite bucket bound is required"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
        }
    }

    /// A histogram over [`default_latency_buckets`] (seconds).
    pub fn latency() -> Histogram {
        Histogram::new(default_latency_buckets())
    }

    /// A histogram over [`default_count_buckets`] (dimensionless).
    pub fn counts() -> Histogram {
        Histogram::new(default_count_buckets())
    }

    /// Record one observation. Non-finite values are dropped.
    pub fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let index = self.bounds.partition_point(|bound| *bound < value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value);
        self.min.fetch_min(value);
        self.max.fetch_max(value);
    }

    /// Record a wall-clock duration, in seconds.
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_secs_f64());
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.sum.load()
    }

    /// The bucket upper bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A point-in-time copy with derived statistics (mean, p50, p90,
    /// p99). Buckets racing with concurrent `record` calls may be a few
    /// observations apart from `count`; each value read is itself
    /// consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load();
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (self.min.load(), self.max.load())
        };
        let buckets: Vec<Bucket> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, bucket)| Bucket {
                le: self.bounds.get(i).copied().unwrap_or(f64::INFINITY),
                count: bucket.load(Ordering::Relaxed),
            })
            .collect();
        let mut snapshot = HistogramSnapshot {
            count,
            sum,
            min,
            max,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            buckets,
        };
        snapshot.p50 = snapshot.quantile(0.50);
        snapshot.p90 = snapshot.quantile(0.90);
        snapshot.p99 = snapshot.quantile(0.99);
        snapshot
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.bounds)
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_use_le_semantics() {
        let h = Histogram::new(vec![1.0, 2.0, 5.0]);
        h.record(0.5); // <= 1.0
        h.record(1.0); // exactly on a bound -> that bound's bucket
        h.record(1.5); // (1.0, 2.0]
        h.record(5.0); // (2.0, 5.0]
        h.record(7.0); // overflow
        let snap = h.snapshot();
        let counts: Vec<u64> = snap.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![2, 1, 1, 1]);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.min, 0.5);
        assert_eq!(snap.max, 7.0);
    }

    #[test]
    fn default_buckets_are_strictly_ascending() {
        for bounds in [default_latency_buckets(), default_count_buckets()] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
            assert!(bounds.iter().all(|b| b.is_finite()));
        }
        assert_eq!(default_latency_buckets().len(), 24);
    }

    #[test]
    fn new_sorts_and_dedups_bounds() {
        let h = Histogram::new(vec![5.0, 1.0, 5.0, f64::INFINITY, 2.0]);
        assert_eq!(h.bounds(), &[1.0, 2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "at least one finite bucket bound")]
    fn empty_bounds_rejected() {
        Histogram::new(vec![f64::INFINITY]);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let h = Histogram::new(vec![1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        let snap = h.snapshot();
        assert_eq!(snap.min, 0.0);
        assert_eq!(snap.max, 0.0);
        assert_eq!(snap.mean, 0.0);
    }

    #[test]
    fn quantiles_of_a_uniform_distribution() {
        // 1000 uniform values in (0, 1]: i/1000 for i = 1..=1000. With
        // 1-2-5 bucket bounds and linear interpolation the estimated
        // quantiles land on the exact order statistics.
        let h = Histogram::latency();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert!((snap.p50 - 0.5).abs() < 1e-9, "p50 {}", snap.p50);
        assert!((snap.p90 - 0.9).abs() < 1e-9, "p90 {}", snap.p90);
        assert!((snap.p99 - 0.99).abs() < 1e-9, "p99 {}", snap.p99);
        assert!((snap.mean - 0.5005).abs() < 1e-9, "mean {}", snap.mean);
    }

    #[test]
    fn quantiles_of_a_skewed_distribution() {
        // 90 fast observations at 1 ms, 10 slow at 0.3 s: p50 sits in
        // the 1 ms bucket, p99 in the (0.2, 0.5] bucket.
        let h = Histogram::latency();
        for _ in 0..90 {
            h.record(0.001);
        }
        for _ in 0..10 {
            h.record(0.3);
        }
        let snap = h.snapshot();
        assert!(snap.p50 <= 0.001 + 1e-12, "p50 {}", snap.p50);
        assert!(
            snap.p99 > 0.2 && snap.p99 <= 0.5,
            "p99 {} should sit in the slow bucket",
            snap.p99
        );
        assert_eq!(snap.max, 0.3);
    }

    #[test]
    fn quantiles_clamp_to_observed_extrema() {
        let h = Histogram::new(vec![10.0, 100.0]);
        h.record(42.0);
        let snap = h.snapshot();
        // A single observation: every quantile is that observation.
        assert_eq!(snap.p50, 42.0);
        assert_eq!(snap.p99, 42.0);
    }

    #[test]
    fn overflow_quantile_reports_observed_max() {
        let h = Histogram::new(vec![1.0]);
        for _ in 0..100 {
            h.record(50.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p99, 50.0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::latency());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record((i % 100) as f64 / 1000.0 + 0.0005);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, threads * per_thread);
        // Sum must equal the per-thread sum times the thread count.
        let one_thread: f64 = (0..per_thread)
            .map(|i| (i % 100) as f64 / 1000.0 + 0.0005)
            .sum();
        assert!((snap.sum - one_thread * threads as f64).abs() < 1e-6);
    }
}
