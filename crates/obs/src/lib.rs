//! # openbi-obs
//!
//! The OpenBI observability substrate: a dependency-free metrics layer
//! that makes the paper's "quality awareness" stance apply to the
//! system itself — the experiment grid executor, the KDD pipeline, and
//! the advisor serving path all record what they do, how often, and how
//! long it takes, so perf claims are measured rather than asserted
//! (DESIGN.md §9).
//!
//! The model is deliberately small:
//!
//! * [`MetricsRegistry`] — a named bag of [`Counter`]s (monotonic
//!   `u64`), [`Gauge`]s (last-written `f64`), and fixed-bucket
//!   [`Histogram`]s (lock-free atomic buckets with p50/p90/p99
//!   summaries). Handles are `Arc`s: fetch once, record many times.
//! * [`Span`] — an RAII timer that records its elapsed wall time into a
//!   named histogram when dropped.
//! * [`MetricsSnapshot`] — a point-in-time copy of every instrument,
//!   exportable as JSON (the `metrics` block of the `BENCH_*.json`
//!   files and the CLI's `--metrics-out`).
//! * a process-global registry slot ([`install`] / [`uninstall`] /
//!   [`global`]) so deep call paths can record without threading a
//!   handle through every signature. When nothing is installed, every
//!   recording helper is a single relaxed atomic load — the instrumented
//!   binaries stay within the < 2 % overhead budget of DESIGN.md §9
//!   even on hot paths.
//!
//! ```
//! use openbi_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("requests_total").add(3);
//! registry.gauge("queue_depth").set(7.0);
//! let latency = registry.histogram("request.seconds");
//! latency.record(0.002);
//! latency.record(0.004);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["requests_total"], 3);
//! assert_eq!(snapshot.histograms["request.seconds"].count, 2);
//! assert!(snapshot.to_json().contains("requests_total"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod atomic;
mod global;
pub mod histogram;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use global::{
    counter_add, gauge_set, global, install, is_installed, observe, observe_duration, span,
    uninstall,
};
pub use histogram::{
    default_count_buckets, default_latency_buckets, exponential_buckets, Histogram,
};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use snapshot::{Bucket, HistogramSnapshot, MetricsSnapshot};
pub use span::Span;
