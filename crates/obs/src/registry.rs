//! The metrics registry: named counters, gauges, and histograms.
//!
//! A [`MetricsRegistry`] is a concurrent name → instrument map. Lookup
//! (`counter` / `gauge` / `histogram`) is get-or-create and returns an
//! `Arc` handle; hot paths fetch handles once and record through them
//! without touching the registry again. Recording through a handle is
//! purely atomic — the registry lock is only taken to register a new
//! name or to [`snapshot`](MetricsRegistry::snapshot).

use crate::atomic::AtomicF64;
use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A monotonically increasing `u64` counter.
///
/// ```
/// let c = openbi_obs::Counter::default();
/// c.add(2);
/// c.add(1);
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increase the counter by `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increase the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge.
///
/// ```
/// let g = openbi_obs::Gauge::default();
/// g.set(4.0);
/// g.add(-1.5);
/// assert_eq!(g.get(), 2.5);
/// ```
#[derive(Debug)]
pub struct Gauge(AtomicF64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicF64::new(0.0))
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the gauge value.
    pub fn set(&self, value: f64) {
        self.0.store(value);
    }

    /// Adjust the gauge by `delta` (negative deltas allowed).
    pub fn add(&self, delta: f64) {
        self.0.fetch_add(delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.load()
    }
}

/// A concurrent registry of named instruments.
///
/// ```
/// use openbi_obs::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let cells = registry.counter("grid.cells_total");
/// cells.inc();
/// // The same name always resolves to the same instrument.
/// registry.counter("grid.cells_total").inc();
/// assert_eq!(cells.get(), 2);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(found) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
        return Arc::clone(found);
    }
    let mut writable = map.write().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(
        writable
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created at zero on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::new)
    }

    /// The gauge registered under `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::new)
    }

    /// The histogram registered under `name`, created with the default
    /// latency buckets ([`crate::default_latency_buckets`]) on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, Histogram::latency)
    }

    /// The histogram registered under `name`, created with the given
    /// bucket bounds on first use. If the name already exists, the
    /// existing histogram (and its buckets) wins.
    pub fn histogram_with(&self, name: &str, bounds: Vec<f64>) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(bounds))
    }

    /// A point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, gauge)| (name.clone(), gauge.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let registry = MetricsRegistry::new();
        registry.counter("a").add(1);
        registry.counter("a").add(2);
        registry.counter("b").add(5);
        registry.gauge("g").set(1.5);
        registry.gauge("g").add(0.5);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["a"], 3);
        assert_eq!(snap.counters["b"], 5);
        assert_eq!(snap.gauges["g"], 2.0);
    }

    #[test]
    fn histogram_with_keeps_first_buckets() {
        let registry = MetricsRegistry::new();
        let first = registry.histogram_with("h", vec![1.0, 2.0]);
        let second = registry.histogram_with("h", vec![100.0]);
        assert_eq!(first.bounds(), second.bounds());
        assert_eq!(first.bounds(), &[1.0, 2.0]);
    }

    #[test]
    fn concurrent_registration_and_recording_is_lossless() {
        let registry = Arc::new(MetricsRegistry::new());
        let threads = 8usize;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    // Each thread re-fetches handles to exercise the
                    // get-or-create race, and also hammers a shared name.
                    let own = registry.counter(&format!("worker.{t}.cells"));
                    let shared = registry.counter("cells_total");
                    let latency = registry.histogram("cell.seconds");
                    for i in 0..per_thread {
                        own.inc();
                        shared.inc();
                        latency.record((i % 7) as f64 * 1e-3 + 1e-4);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        let total = threads as u64 * per_thread;
        assert_eq!(snap.counters["cells_total"], total);
        for t in 0..threads {
            assert_eq!(snap.counters[&format!("worker.{t}.cells")], per_thread);
        }
        // The shared total equals the sum of the per-thread counters.
        let per_worker_sum: u64 = (0..threads)
            .map(|t| snap.counters[&format!("worker.{t}.cells")])
            .sum();
        assert_eq!(per_worker_sum, snap.counters["cells_total"]);
        let hist = &snap.histograms["cell.seconds"];
        assert_eq!(hist.count, total);
        assert_eq!(hist.buckets.iter().map(|b| b.count).sum::<u64>(), total);
    }
}
