//! Point-in-time metric snapshots and their JSON export.
//!
//! [`MetricsSnapshot`] is what leaves the process: the `metrics` block
//! embedded in `BENCH_experiment_grid.json` / `BENCH_advisor.json` and
//! the file written by the CLI's `--metrics-out` flag all share this
//! one schema (documented in EXPERIMENTS.md). The crate is std-only, so
//! [`MetricsSnapshot::to_json`] hand-writes the JSON; consumers that
//! want a typed value parse it with their own `serde_json`.

use std::collections::BTreeMap;

/// One histogram bucket in a snapshot: the inclusive upper bound and
/// the number of observations that landed in this bucket (per-bucket,
/// not cumulative). The final bucket's bound is `+Inf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive upper bound (`le` semantics); `f64::INFINITY` for the
    /// overflow bucket.
    pub le: f64,
    /// Observations in this bucket alone.
    pub count: u64,
}

/// A point-in-time copy of one histogram, with derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Per-bucket counts, ascending by bound; the last bucket is the
    /// `+Inf` overflow bucket.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank, clamped
    /// to the observed `[min, max]`. The lower edge of the first bucket
    /// is taken as 0; the upper edge of the overflow bucket is the
    /// observed max.
    ///
    /// ```
    /// use openbi_obs::Histogram;
    ///
    /// let h = Histogram::new(vec![1.0, 2.0, 4.0]);
    /// for v in [0.5, 1.5, 2.5, 3.5] {
    ///     h.record(v);
    /// }
    /// let snap = h.snapshot();
    /// let p75 = snap.quantile(0.75);
    /// assert!(p75 > 2.0 && p75 <= 4.0, "p75 {p75}");
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            if bucket.count == 0 {
                continue;
            }
            let next = cumulative + bucket.count;
            if next as f64 >= rank {
                let lower = if i == 0 { 0.0 } else { self.buckets[i - 1].le };
                let upper = if bucket.le.is_finite() {
                    bucket.le
                } else {
                    self.max
                };
                let fraction = (rank - cumulative as f64) / bucket.count as f64;
                let estimate = lower + (upper - lower) * fraction;
                return estimate.clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }
}

/// A point-in-time copy of every instrument in a
/// [`MetricsRegistry`](crate::MetricsRegistry), keyed by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when no instrument has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serialize as a compact JSON object:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},"histograms":{"name":
    ///   {"count":2,"sum":0.3,"min":0.1,"max":0.2,"mean":0.15,
    ///    "p50":0.1,"p90":0.2,"p99":0.2,
    ///    "buckets":[{"le":0.1,"count":1},{"le":"+Inf","count":1}]}}}
    /// ```
    ///
    /// The overflow bucket's bound is the string `"+Inf"`; every other
    /// number is a plain JSON number (non-finite values, which cannot
    /// occur for recorded data, would serialize as `null`).
    ///
    /// ```
    /// use openbi_obs::MetricsRegistry;
    ///
    /// let registry = MetricsRegistry::new();
    /// registry.counter("cells_total").add(2);
    /// let json = registry.snapshot().to_json();
    /// assert!(json.starts_with('{') && json.ends_with('}'));
    /// assert!(json.contains("\"cells_total\":2"));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        push_entries(&mut out, &self.counters, |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, &self.gauges, |out, v| push_f64(out, *v));
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, &self.histograms, |out, h| push_histogram(out, h));
        out.push_str("}}");
        out
    }
}

fn push_entries<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    mut push_value: impl FnMut(&mut String, &V),
) {
    for (i, (key, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, key);
        out.push(':');
        push_value(out, value);
    }
}

fn push_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push_str("{\"count\":");
    out.push_str(&h.count.to_string());
    for (label, value) in [
        ("sum", h.sum),
        ("min", h.min),
        ("max", h.max),
        ("mean", h.mean),
        ("p50", h.p50),
        ("p90", h.p90),
        ("p99", h.p99),
    ] {
        out.push_str(",\"");
        out.push_str(label);
        out.push_str("\":");
        push_f64(out, value);
    }
    out.push_str(",\"buckets\":[");
    for (i, bucket) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"le\":");
        if bucket.le.is_finite() {
            push_f64(out, bucket.le);
        } else {
            out.push_str("\"+Inf\"");
        }
        out.push_str(",\"count\":");
        out.push_str(&bucket.count.to_string());
        out.push('}');
    }
    out.push_str("]}");
}

fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // Rust's Display for f64 never emits exponents or locale
        // separators, so the shortest round-trip form is valid JSON.
        out.push_str(&value.to_string());
    } else {
        out.push_str("null");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with_one_histogram() -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("cells_total".into(), 7);
        snapshot.gauges.insert("queue_depth".into(), 3.5);
        let h = crate::Histogram::new(vec![0.1, 1.0]);
        h.record(0.05);
        h.record(0.5);
        snapshot
            .histograms
            .insert("cell.seconds".into(), h.snapshot());
        snapshot
    }

    #[test]
    fn json_shape_is_stable() {
        let json = snapshot_with_one_histogram().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"cells_total\":7"));
        assert!(json.contains("\"queue_depth\":3.5"));
        assert!(json.contains("\"cell.seconds\":{\"count\":2"));
        assert!(json.contains("{\"le\":\"+Inf\",\"count\":0}"));
        assert!(json.ends_with("}}"));
        // Balanced braces/brackets: a cheap structural sanity check
        // (the integration tests parse this with serde_json).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snapshot = MetricsSnapshot::default();
        assert!(snapshot.is_empty());
        assert_eq!(
            snapshot.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("weird\"name\\\n".into(), 1);
        let json = snapshot.to_json();
        assert!(json.contains("\"weird\\\"name\\\\\\u000a\":1"), "{json}");
    }

    #[test]
    fn quantile_handles_empty_and_extremes() {
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile(0.5), 0.0);
        let h = crate::Histogram::new(vec![1.0]);
        h.record(0.25);
        h.record(0.75);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), 0.25, "q=0 clamps to min");
        assert_eq!(snap.quantile(1.0), 0.75, "q=1 clamps to max");
    }
}
