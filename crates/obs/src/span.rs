//! RAII wall-clock spans.
//!
//! A [`Span`] measures the wall time between its creation and its drop
//! and records it into a named latency histogram. Spans created while
//! no global registry is installed are inert: no clock is read and the
//! drop is a no-op, which is what keeps always-on instrumentation
//! within the DESIGN.md §9 overhead budget.

use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;
use std::sync::Arc;
use std::time::Instant;

/// An RAII timer that records its elapsed seconds into a histogram on
/// drop.
///
/// ```
/// use openbi_obs::{MetricsRegistry, Span};
///
/// let registry = MetricsRegistry::new();
/// {
///     let _span = Span::on(&registry, "stage.seconds");
///     // ... timed work ...
/// }
/// assert_eq!(registry.snapshot().histograms["stage.seconds"].count, 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Option<Arc<Histogram>>,
    start: Option<Instant>,
}

impl Span {
    /// Start a span that records into `name` on the process-global
    /// registry; inert when none is installed (see [`crate::install`]).
    pub fn start(name: &str) -> Span {
        match crate::global() {
            Some(registry) => Span::on(&registry, name),
            None => Span::disabled(),
        }
    }

    /// Start a span that records into `name` on an explicit registry.
    pub fn on(registry: &MetricsRegistry, name: &str) -> Span {
        Span {
            histogram: Some(registry.histogram(name)),
            start: Some(Instant::now()),
        }
    }

    /// A span that measures and records nothing.
    pub fn disabled() -> Span {
        Span {
            histogram: None,
            start: None,
        }
    }

    /// True when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.histogram.is_some()
    }

    /// End the span now, recording its elapsed time. Equivalent to
    /// dropping it; provided so call sites can make the measurement
    /// boundary explicit.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(histogram), Some(start)) = (self.histogram.take(), self.start) {
            histogram.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let registry = MetricsRegistry::new();
        {
            let span = Span::on(&registry, "t.seconds");
            assert!(span.is_recording());
            std::thread::sleep(std::time::Duration::from_millis(2));
            span.finish();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["t.seconds"].count, 1);
        assert!(snap.histograms["t.seconds"].sum >= 0.002);
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::disabled();
        assert!(!span.is_recording());
        drop(span);
    }
}
