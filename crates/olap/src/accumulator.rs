//! Mergeable per-measure accumulators and quality-annotated cell state.
//!
//! Each cube cell is built from one [`CellState`]: a vector of
//! [`MeasureAcc`]s (one per declared measure) plus the quality tallies
//! ([`CellState::support`], [`CellState::null_cells`]) that become the
//! cell's [`CellQuality`] annotation. The accumulators are the reason
//! shard merging is *exact*:
//!
//! * `Sum`/`Mean` hold an [`ExactSum`] superaccumulator, so partial sums
//!   merge without rounding and the final double is independent of how
//!   rows were partitioned (`mean = (sum, n)`; the single division
//!   happens once, at [`MeasureAcc::value`]).
//! * `Count` is a `u64` — trivially exact.
//! * `Min`/`Max` fold with strict `<`/`>` — first-seen wins ties
//!   (including ±0.0), NaN never beats the incumbent — so the
//!   first-seen best composes over contiguous shards merged in shard
//!   order and equals the sequential fold.
//!
//! The `value()` of every accumulator reproduces the frozen
//! [`crate::reference`] semantics bit for bit: a group with no numeric
//! input yields `Value::Null`, `Count` yields `Value::Int`, everything
//! else `Value::Float`, and a group whose only numeric inputs are NaN
//! yields `NaN` for sum/mean but the fold identity (±∞) for min/max —
//! that is what the reference's strict-comparison fold over
//! `filter_map(as_f64)` does, and the differential suite holds us to
//! it.

use crate::cube::Measure;
use openbi_table::{ExactSum, Value};

/// One measure's mergeable accumulator state.
#[derive(Debug, Clone)]
pub enum MeasureAcc {
    /// Exact sum + count of numeric (non-null, non-string) inputs.
    Sum {
        /// Exact running sum.
        sum: ExactSum,
        /// Numeric inputs seen (NaN included).
        n: u64,
    },
    /// Mean as `(exact sum, count)`; divided once at readout.
    Mean {
        /// Exact running sum.
        sum: ExactSum,
        /// Numeric inputs seen (NaN included).
        n: u64,
    },
    /// Count of non-null cells of any type.
    Count {
        /// Non-null cells seen.
        n: u64,
    },
    /// First-seen minimum under strict `<` (±0.0 ties keep the earlier
    /// value), NaN skipped.
    Min {
        /// Least value seen (fold identity `+∞`).
        best: f64,
        /// Numeric inputs seen (NaN included) — decides Null vs value.
        n: u64,
    },
    /// First-seen maximum under strict `>` (±0.0 ties keep the earlier
    /// value), NaN skipped.
    Max {
        /// Greatest value seen (fold identity `-∞`).
        best: f64,
        /// Numeric inputs seen (NaN included) — decides Null vs value.
        n: u64,
    },
}

/// `a < b` under the min/max fold contract: plain strict `<`, so ties
/// (including `-0.0` vs `+0.0`) keep the incumbent and NaN never beats
/// it. This matches `group_by`'s explicit fold exactly, and first-seen
/// wins composes over contiguous shards merged in shard order — the
/// property the bitwise differential tests rely on (DESIGN.md §14).
fn less(a: f64, b: f64) -> bool {
    a < b
}

impl MeasureAcc {
    /// A fresh accumulator for the given measure.
    pub fn new(measure: &Measure) -> Self {
        match measure {
            Measure::Sum(_) => MeasureAcc::Sum {
                sum: ExactSum::new(),
                n: 0,
            },
            Measure::Mean(_) => MeasureAcc::Mean {
                sum: ExactSum::new(),
                n: 0,
            },
            Measure::Count(_) => MeasureAcc::Count { n: 0 },
            Measure::Min(_) => MeasureAcc::Min {
                best: f64::INFINITY,
                n: 0,
            },
            Measure::Max(_) => MeasureAcc::Max {
                best: f64::NEG_INFINITY,
                n: 0,
            },
        }
    }

    /// Fold one row's cell in: `is_null` is the raw cell's nullness (any
    /// type), `num` its numeric view (`Value::as_f64` — `None` for null
    /// *and* string cells).
    pub fn update(&mut self, is_null: bool, num: Option<f64>) {
        match self {
            MeasureAcc::Sum { sum, n } | MeasureAcc::Mean { sum, n } => {
                if let Some(v) = num {
                    sum.add(v);
                    *n += 1;
                }
            }
            MeasureAcc::Count { n } => {
                if !is_null {
                    *n += 1;
                }
            }
            MeasureAcc::Min { best, n } => {
                if let Some(v) = num {
                    *n += 1;
                    if less(v, *best) {
                        *best = v;
                    }
                }
            }
            MeasureAcc::Max { best, n } => {
                if let Some(v) = num {
                    *n += 1;
                    if less(*best, v) {
                        *best = v;
                    }
                }
            }
        }
    }

    /// Fold another shard's accumulator in. Exact for sum/mean/count;
    /// associative for min/max — callers merge in shard order, so the
    /// result equals the sequential fold over the full row range.
    ///
    /// # Panics
    /// If the two accumulators are of different variants (they never are
    /// inside the engine: shard states are built from the same measure
    /// list).
    pub fn merge(&mut self, other: &MeasureAcc) {
        match (self, other) {
            (MeasureAcc::Sum { sum, n }, MeasureAcc::Sum { sum: osum, n: onum })
            | (MeasureAcc::Mean { sum, n }, MeasureAcc::Mean { sum: osum, n: onum }) => {
                sum.merge(osum);
                *n += onum;
            }
            (MeasureAcc::Count { n }, MeasureAcc::Count { n: onum }) => *n += onum,
            (MeasureAcc::Min { best, n }, MeasureAcc::Min { best: ob, n: onum }) => {
                *n += onum;
                if less(*ob, *best) {
                    *best = *ob;
                }
            }
            (MeasureAcc::Max { best, n }, MeasureAcc::Max { best: ob, n: onum }) => {
                *n += onum;
                if less(*best, *ob) {
                    *best = *ob;
                }
            }
            _ => panic!("cannot merge accumulators of different measures"),
        }
    }

    /// Read the accumulator out as the cell value, reproducing the
    /// reference `group_by` semantics exactly (see module docs).
    pub fn value(&self) -> Value {
        match self {
            MeasureAcc::Sum { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.value())
                }
            }
            MeasureAcc::Mean { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.value() / *n as f64)
                }
            }
            MeasureAcc::Count { n } => Value::Int(*n as i64),
            MeasureAcc::Min { best, n } | MeasureAcc::Max { best, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*best)
                }
            }
        }
    }
}

/// Quality annotation carried by every cube cell (row of a rollup):
/// how many fact rows back the aggregate, and what fraction of the
/// measure-relevant cells among them were null — the paper's
/// "quality awareness" travelling with the aggregate itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellQuality {
    /// Fact rows contributing to this cell.
    pub support: u64,
    /// Null fraction over the distinct measure source columns within
    /// those rows, in `[0, 1]` (`0.0` when there are no measures).
    pub null_ratio: f64,
}

/// The full mergeable state behind one cube cell.
#[derive(Debug, Clone)]
pub struct CellState {
    /// One accumulator per declared measure, in declaration order.
    pub accs: Vec<MeasureAcc>,
    /// Fact rows folded into this cell.
    pub support: u64,
    /// Null cells seen across the *distinct* measure source columns.
    pub null_cells: u64,
}

impl CellState {
    /// Fresh state for the given measure list.
    pub fn new(measures: &[Measure]) -> Self {
        CellState {
            accs: measures.iter().map(MeasureAcc::new).collect(),
            support: 0,
            null_cells: 0,
        }
    }

    /// Fold another shard's cell state in (same measure list).
    pub fn merge(&mut self, other: &CellState) {
        debug_assert_eq!(self.accs.len(), other.accs.len());
        for (a, b) in self.accs.iter_mut().zip(&other.accs) {
            a.merge(b);
        }
        self.support += other.support;
        self.null_cells += other.null_cells;
    }

    /// The quality annotation for this cell, given the number of
    /// distinct measure source columns the null tally ran over.
    pub fn quality(&self, n_quality_cols: usize) -> CellQuality {
        let denom = self.support * n_quality_cols as u64;
        CellQuality {
            support: self.support,
            null_ratio: if denom == 0 {
                0.0
            } else {
                self.null_cells as f64 / denom as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_merge_exactly() {
        let m = Measure::Sum("x".into());
        let mut a = MeasureAcc::new(&m);
        let mut b = MeasureAcc::new(&m);
        a.update(false, Some(1e16));
        a.update(false, Some(1.0));
        b.update(false, Some(-1e16));
        b.update(false, Some(1.0));
        a.merge(&b);
        assert_eq!(a.value(), Value::Float(2.0));

        let mut seq = MeasureAcc::new(&Measure::Mean("x".into()));
        for v in [3.0, 4.0, 5.0, 100.0] {
            seq.update(false, Some(v));
        }
        let mut left = MeasureAcc::new(&Measure::Mean("x".into()));
        let mut right = MeasureAcc::new(&Measure::Mean("x".into()));
        left.update(false, Some(3.0));
        left.update(false, Some(4.0));
        right.update(false, Some(5.0));
        right.update(false, Some(100.0));
        left.merge(&right);
        assert_eq!(seq.value(), left.value());
    }

    #[test]
    fn empty_numeric_input_reads_null() {
        for m in [
            Measure::Sum("x".into()),
            Measure::Mean("x".into()),
            Measure::Min("x".into()),
            Measure::Max("x".into()),
        ] {
            let mut acc = MeasureAcc::new(&m);
            acc.update(true, None); // a null cell
            assert_eq!(acc.value(), Value::Null, "{m:?}");
        }
        let mut count = MeasureAcc::new(&Measure::Count("x".into()));
        count.update(true, None);
        assert_eq!(count.value(), Value::Int(0));
        count.update(false, None); // non-null string cell still counts
        assert_eq!(count.value(), Value::Int(1));
    }

    #[test]
    fn min_max_match_reference_fold_semantics() {
        // All-NaN numeric input: the strict fold from +∞ never moves,
        // so the reference reports +∞ (not Null, not NaN).
        let mut min = MeasureAcc::new(&Measure::Min("x".into()));
        min.update(false, Some(f64::NAN));
        assert_eq!(min.value(), Value::Float(f64::INFINITY));
        min.update(false, Some(2.0));
        min.update(false, Some(-3.0));
        assert_eq!(min.value(), Value::Float(-3.0));

        // ±0 ties keep the first-seen value for both min and max — the
        // strict-comparison contract `group_by`'s explicit fold pins.
        let mut a = MeasureAcc::new(&Measure::Min("x".into()));
        a.update(false, Some(0.0));
        a.update(false, Some(-0.0));
        let mut b = MeasureAcc::new(&Measure::Min("x".into()));
        b.update(false, Some(-0.0));
        b.update(false, Some(0.0));
        let (Value::Float(x), Value::Float(y)) = (a.value(), b.value()) else {
            panic!("expected floats");
        };
        assert!(!x.is_sign_negative(), "first-seen +0.0 survives the tie");
        assert!(y.is_sign_negative(), "first-seen -0.0 survives the tie");

        let mut max = MeasureAcc::new(&Measure::Max("x".into()));
        max.update(false, Some(-0.0));
        max.update(false, Some(0.0));
        let Value::Float(z) = max.value() else {
            panic!("expected float");
        };
        assert!(z.is_sign_negative(), "first-seen -0.0 survives the tie");
    }

    #[test]
    fn min_merge_is_associative_over_shards() {
        let values = [5.0, -1.0, f64::NAN, -1.0, 7.0, -0.0, 0.0];
        let mut seq = MeasureAcc::new(&Measure::Min("x".into()));
        for v in values {
            seq.update(false, Some(v));
        }
        for split in 1..values.len() {
            let mut left = MeasureAcc::new(&Measure::Min("x".into()));
            let mut right = MeasureAcc::new(&Measure::Min("x".into()));
            for &v in &values[..split] {
                left.update(false, Some(v));
            }
            for &v in &values[split..] {
                right.update(false, Some(v));
            }
            left.merge(&right);
            assert_eq!(seq.value(), left.value(), "split at {split}");
        }
    }

    #[test]
    fn cell_quality_ratio() {
        let measures = [Measure::Sum("x".into()), Measure::Mean("x".into())];
        let mut cell = CellState::new(&measures);
        cell.support = 4;
        cell.null_cells = 1; // x is one distinct column with 1 null in 4 rows
        let q = cell.quality(1);
        assert_eq!(q.support, 4);
        assert!((q.null_ratio - 0.25).abs() < 1e-12);
        assert_eq!(CellState::new(&measures).quality(1).null_ratio, 0.0);
        assert_eq!(cell.quality(0).null_ratio, 0.0);
    }
}
