//! A lightweight OLAP cube over a table: dimensions, measures, rollup,
//! slice and dice — the "OLAP analysis" leg of the OpenBI vision (§1),
//! served by the sharded engine in [`crate::shard`] (DESIGN.md §14).
//!
//! Every aggregation — [`Cube::rollup`], [`Cube::total`], and the
//! quality-annotated [`Cube::rollup_quality`] — runs the sharded build
//! and is bitwise-identical to the frozen single-threaded
//! [`crate::reference`] cube at any shard count; the differential suite
//! (`tests/tests/olap_equivalence.rs`) holds that line.

use crate::shard::{build_cube, CubeOptions, CubeResult};
use openbi_table::{Result, Table, TableError};

/// An aggregate measure definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Measure {
    /// Sum of a numeric column.
    Sum(String),
    /// Mean of a numeric column.
    Mean(String),
    /// Count of non-null cells of a column.
    Count(String),
    /// Minimum of a numeric column.
    Min(String),
    /// Maximum of a numeric column.
    Max(String),
}

impl Measure {
    /// The source column the measure reads.
    pub fn column(&self) -> &str {
        match self {
            Measure::Sum(c)
            | Measure::Mean(c)
            | Measure::Count(c)
            | Measure::Min(c)
            | Measure::Max(c) => c,
        }
    }

    /// Name of the output column this measure produces (matches the
    /// `group_by` aggregate naming: `sum(col)`, `mean(col)`, …).
    pub fn output_name(&self) -> String {
        match self {
            Measure::Sum(c) => format!("sum({c})"),
            Measure::Mean(c) => format!("mean({c})"),
            Measure::Count(c) => format!("count({c})"),
            Measure::Min(c) => format!("min({c})"),
            Measure::Max(c) => format!("max({c})"),
        }
    }
}

/// A cube: a fact table plus declared dimensions and measures.
#[derive(Debug, Clone)]
pub struct Cube {
    facts: Table,
    dimensions: Vec<String>,
    measures: Vec<Measure>,
}

impl Cube {
    /// Build a cube, validating that dimensions and measure columns
    /// exist.
    pub fn new(facts: Table, dimensions: &[&str], measures: Vec<Measure>) -> Result<Self> {
        for d in dimensions {
            facts.column(d)?;
        }
        for m in &measures {
            facts.column(m.column())?;
        }
        if dimensions.is_empty() {
            return Err(TableError::InvalidArgument(
                "a cube needs at least one dimension".to_string(),
            ));
        }
        Ok(Cube {
            facts,
            dimensions: dimensions.iter().map(|s| s.to_string()).collect(),
            measures,
        })
    }

    /// The declared dimensions.
    pub fn dimensions(&self) -> &[String] {
        &self.dimensions
    }

    /// The declared measures.
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// The underlying fact table.
    pub fn facts(&self) -> &Table {
        &self.facts
    }

    fn check_dims(&self, dims: &[&str]) -> Result<()> {
        for d in dims {
            if !self.dimensions.iter().any(|x| x == d) {
                return Err(TableError::InvalidArgument(format!(
                    "{d} is not a declared dimension"
                )));
            }
        }
        if dims.is_empty() {
            return Err(TableError::InvalidArgument(
                "group_by requires at least one key column".to_string(),
            ));
        }
        Ok(())
    }

    /// Roll up to the named subset of dimensions (must be declared).
    pub fn rollup(&self, dims: &[&str]) -> Result<Table> {
        Ok(self.rollup_quality(dims, &CubeOptions::default())?.table)
    }

    /// Roll up with full quality annotation and build control: returns
    /// the aggregate table plus per-cell support / null-ratio and the
    /// shard fault outcome.
    pub fn rollup_quality(&self, dims: &[&str], options: &CubeOptions) -> Result<CubeResult> {
        self.check_dims(dims)?;
        build_cube(&self.facts, dims, &self.measures, options)
    }

    /// Slice: fix one dimension to a value, returning a cube over the
    /// remaining facts.
    pub fn slice(&self, dimension: &str, value: &str) -> Result<Cube> {
        if !self.dimensions.iter().any(|x| x == dimension) {
            return Err(TableError::InvalidArgument(format!(
                "{dimension} is not a declared dimension"
            )));
        }
        let col_idx = self
            .facts
            .column_names()
            .iter()
            .position(|n| *n == dimension)
            .expect("validated dimension");
        let facts = self.facts.filter(|row| row[col_idx].to_string() == value);
        Ok(Cube {
            facts,
            dimensions: self.dimensions.clone(),
            measures: self.measures.clone(),
        })
    }

    /// Dice: keep rows where `dimension`'s value is in `values`.
    pub fn dice(&self, dimension: &str, values: &[&str]) -> Result<Cube> {
        if !self.dimensions.iter().any(|x| x == dimension) {
            return Err(TableError::InvalidArgument(format!(
                "{dimension} is not a declared dimension"
            )));
        }
        let col_idx = self
            .facts
            .column_names()
            .iter()
            .position(|n| *n == dimension)
            .expect("validated dimension");
        let facts = self.facts.filter(|row| {
            let v = row[col_idx].to_string();
            values.iter().any(|x| *x == v)
        });
        Ok(Cube {
            facts,
            dimensions: self.dimensions.clone(),
            measures: self.measures.clone(),
        })
    }

    /// Grand total: all measures over all facts (one row when the fact
    /// table has rows, zero when it is empty — same shape as grouping
    /// by a synthetic constant key).
    pub fn total(&self) -> Result<Table> {
        Ok(self.total_quality(&CubeOptions::default())?.table)
    }

    /// Grand total with quality annotation and build control.
    pub fn total_quality(&self, options: &CubeOptions) -> Result<CubeResult> {
        build_cube(&self.facts, &[], &self.measures, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::{Column, Value};

    fn facts() -> Table {
        Table::new(vec![
            Column::from_str_values("district", ["n", "n", "s", "s"]),
            Column::from_str_values("year", ["2023", "2024", "2023", "2024"]),
            Column::from_f64("spend", [10.0, 20.0, 30.0, 40.0]),
        ])
        .unwrap()
    }

    fn cube() -> Cube {
        Cube::new(
            facts(),
            &["district", "year"],
            vec![Measure::Sum("spend".into()), Measure::Mean("spend".into())],
        )
        .unwrap()
    }

    #[test]
    fn rollup_by_one_dimension() {
        let t = cube().rollup(&["district"]).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.get("sum(spend)", 0).unwrap(), Value::Float(30.0));
        assert_eq!(t.get("sum(spend)", 1).unwrap(), Value::Float(70.0));
    }

    #[test]
    fn rollup_by_two_dimensions() {
        let t = cube().rollup(&["district", "year"]).unwrap();
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn slice_fixes_a_value() {
        let sliced = cube().slice("district", "n").unwrap();
        let t = sliced.rollup(&["year"]).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.get("sum(spend)", 0).unwrap(), Value::Float(10.0));
    }

    #[test]
    fn dice_keeps_selected_values() {
        let diced = cube().dice("year", &["2024"]).unwrap();
        assert_eq!(diced.facts().n_rows(), 2);
        let t = diced.rollup(&["district"]).unwrap();
        assert_eq!(t.get("sum(spend)", 0).unwrap(), Value::Float(20.0));
    }

    #[test]
    fn total_aggregates_everything() {
        let t = cube().total().unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.get("sum(spend)", 0).unwrap(), Value::Float(100.0));
        assert_eq!(t.get("mean(spend)", 0).unwrap(), Value::Float(25.0));
    }

    #[test]
    fn undeclared_dimension_rejected() {
        assert!(cube().rollup(&["spend"]).is_err());
        assert!(cube().rollup(&[]).is_err());
        assert!(cube().slice("spend", "x").is_err());
        assert!(cube().dice("nope", &["x"]).is_err());
        assert!(Cube::new(facts(), &[], vec![]).is_err());
        assert!(Cube::new(facts(), &["nope"], vec![]).is_err());
    }

    #[test]
    fn rollup_quality_annotates_cells() {
        let r = cube()
            .rollup_quality(&["district"], &CubeOptions::with_shards(2))
            .unwrap();
        assert_eq!(r.table.n_rows(), 2);
        assert_eq!(r.quality.len(), 2);
        assert_eq!(r.quality[0].support, 2);
        assert_eq!(r.quality[0].null_ratio, 0.0);
        assert!(!r.is_degraded());
    }
}
