//! Composable text dashboards: a stack of titled panels (reports, bar
//! charts, sparklines, free text) rendered together — the
//! citizen-facing output surface of OpenBI.

use crate::cube::{Cube, Measure};
use crate::report::{
    bar_chart_from_table, quality_table_report, sparkline, table_report, QualityThresholds,
};
use crate::shard::CubeOptions;
use openbi_table::{Result, Table};

/// A dashboard panel.
#[derive(Debug, Clone)]
enum Panel {
    Text(String),
    Table {
        title: String,
        table: Table,
        max_rows: usize,
    },
    Chart(String),
}

/// A vertical stack of panels.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    title: String,
    panels: Vec<Panel>,
}

impl Dashboard {
    /// Start a dashboard with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Dashboard {
            title: title.into(),
            panels: vec![],
        }
    }

    /// Add a free-text panel.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.panels.push(Panel::Text(text.into()));
        self
    }

    /// Add a table panel.
    pub fn table(mut self, title: impl Into<String>, table: Table, max_rows: usize) -> Self {
        self.panels.push(Panel::Table {
            title: title.into(),
            table,
            max_rows,
        });
        self
    }

    /// Add a bar chart of a cube rollup: one bar per value of `dim`,
    /// sized by the given measure.
    pub fn rollup_chart(
        mut self,
        title: impl Into<String>,
        cube: &Cube,
        dim: &str,
        measure: &Measure,
        width: usize,
    ) -> Result<Self> {
        let rolled = cube.rollup(&[dim])?;
        let chart =
            bar_chart_from_table(&title.into(), &rolled, dim, &measure.output_name(), width)?;
        self.panels.push(Panel::Chart(chart));
        Ok(self)
    }

    /// Add a quality-annotated rollup panel: the sharded engine's
    /// aggregate table with per-cell quality flags, and — when shard
    /// retries were exhausted — a `DEGRADED` banner over the partial
    /// result instead of an abort (DESIGN.md §14).
    pub fn quality_rollup(
        mut self,
        title: impl Into<String>,
        cube: &Cube,
        dims: &[&str],
        thresholds: &QualityThresholds,
        options: &CubeOptions,
    ) -> Result<Self> {
        let result = cube.rollup_quality(dims, options)?;
        let report = quality_table_report(&title.into(), &result, thresholds, usize::MAX)?;
        self.panels.push(Panel::Chart(report));
        Ok(self)
    }

    /// Add a sparkline panel of a numeric series.
    pub fn trend(mut self, title: impl Into<String>, values: &[f64]) -> Self {
        self.panels.push(Panel::Chart(format!(
            "== {} ==\n{}\n",
            title.into(),
            sparkline(values)
        )));
        self
    }

    /// Number of panels.
    pub fn len(&self) -> usize {
        self.panels.len()
    }

    /// True iff there are no panels.
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty()
    }

    /// Render everything.
    pub fn render(&self) -> String {
        let rule = "=".repeat(self.title.chars().count() + 8);
        let mut out = format!("{rule}\n=== {} ===\n{rule}\n\n", self.title);
        for p in &self.panels {
            match p {
                Panel::Text(t) => {
                    out.push_str(t);
                    out.push('\n');
                }
                Panel::Table {
                    title,
                    table,
                    max_rows,
                } => out.push_str(&table_report(title, table, *max_rows)),
                Panel::Chart(c) => out.push_str(c),
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn cube() -> Cube {
        let facts = Table::new(vec![
            Column::from_str_values("district", ["n", "s", "n"]),
            Column::from_f64("spend", [1.0, 2.0, 3.0]),
        ])
        .unwrap();
        Cube::new(facts, &["district"], vec![Measure::Sum("spend".into())]).unwrap()
    }

    #[test]
    fn dashboard_renders_all_panels() {
        let d = Dashboard::new("City Budget")
            .text("Welcome, citizen.")
            .table(
                "raw",
                Table::new(vec![Column::from_i64("x", [1])]).unwrap(),
                5,
            )
            .rollup_chart(
                "spend by district",
                &cube(),
                "district",
                &Measure::Sum("spend".into()),
                10,
            )
            .unwrap()
            .trend("pm10", &[1.0, 2.0, 3.0]);
        assert_eq!(d.len(), 4);
        let r = d.render();
        assert!(r.contains("=== City Budget ==="));
        assert!(r.contains("Welcome, citizen."));
        assert!(r.contains("== raw =="));
        assert!(r.contains("spend by district"));
        assert!(r.contains('▁'));
    }

    #[test]
    fn empty_dashboard_renders_header_only() {
        let d = Dashboard::new("empty");
        assert!(d.is_empty());
        assert!(d.render().contains("=== empty ==="));
    }

    #[test]
    fn rollup_chart_propagates_errors() {
        let d = Dashboard::new("x");
        assert!(d
            .rollup_chart("bad", &cube(), "nope", &Measure::Sum("spend".into()), 10)
            .is_err());
    }

    #[test]
    fn quality_rollup_panel_renders_flags() {
        let thresholds = QualityThresholds {
            min_support: 2,
            max_null_ratio: 0.5,
        };
        let d = Dashboard::new("q")
            .quality_rollup(
                "spend by district",
                &cube(),
                &["district"],
                &thresholds,
                &CubeOptions::with_shards(2),
            )
            .unwrap();
        let r = d.render();
        // "n" has 2 rows (ok), "s" has 1 (flagged).
        assert!(r.contains("spend by district"));
        assert!(r.contains("ok"));
        assert!(r.contains("[!] support=1"));
        assert!(r.contains("1/2 cells flagged"));
        assert!(Dashboard::new("x")
            .quality_rollup(
                "bad",
                &cube(),
                &["nope"],
                &thresholds,
                &CubeOptions::default()
            )
            .is_err());
    }
}
