//! # openbi-olap
//!
//! Analysis & visualization layer for OpenBI: a **sharded, parallel
//! OLAP cube** (rollup / slice / dice / totals) over `openbi-table`
//! facts, quality-annotated cube cells, tabular reports, ASCII bar
//! charts and sparklines, and composable text dashboards — the
//! "reporting, OLAP analysis, dashboards" triad of the paper's §1, with
//! the paper's quality-awareness thesis made literal: every aggregate
//! travels with its support and null ratio, and reports flag cells that
//! fall below a quality threshold.
//!
//! Architecture (DESIGN.md §14):
//!
//! * [`cube`] — the [`Cube`] API: declared dimensions + [`Measure`]s
//!   over a fact table.
//! * [`shard`] — the engine: contiguous row shards, per-shard
//!   single-pass columnar kernels, deterministic shard-order merge;
//!   bitwise-identical to the frozen [`reference`] at any shard count.
//! * [`accumulator`] — mergeable per-measure accumulators (exact
//!   sum/mean via `ExactSum`, associative min/max) and the per-cell
//!   [`CellQuality`] annotation.
//! * [`reference`] — the frozen pre-rewrite single-threaded cube, kept
//!   as the differential-testing oracle and bench baseline.
//! * [`report`] / [`dashboard`] — rendering, including
//!   [`quality_table_report`] and [`Dashboard::quality_rollup`] with
//!   their degraded-build banners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod cube;
pub mod dashboard;
pub mod reference;
pub mod report;
pub mod shard;

pub use accumulator::{CellQuality, CellState, MeasureAcc};
pub use cube::{Cube, Measure};
pub use dashboard::Dashboard;
pub use report::{
    bar_chart, bar_chart_from_table, quality_table_report, sparkline, table_report,
    QualityThresholds,
};
pub use shard::{build_cube, CubeOptions, CubeResult, ShardPlan, CUBE_BUILD_FAULT_POINT};
