//! # openbi-olap
//!
//! Lightweight analysis & visualization layer for OpenBI: an OLAP cube
//! (rollup / slice / dice / totals) over `openbi-table` facts, tabular
//! reports, ASCII bar charts and sparklines, and composable text
//! dashboards — the "reporting, OLAP analysis, dashboards" triad of the
//! paper's §1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cube;
pub mod dashboard;
pub mod report;

pub use cube::{Cube, Measure};
pub use dashboard::Dashboard;
pub use report::{bar_chart, bar_chart_from_table, sparkline, table_report};
