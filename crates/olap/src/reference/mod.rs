//! The pre-rewrite **single-threaded reference** cube — the equivalence
//! baseline.
//!
//! A faithful snapshot of `crate::cube` as it stood before the sharded
//! columnar rewrite (DESIGN.md §14): every operation routes through
//! [`openbi_table::group_by`] over a cloned fact table, one group at a
//! time, no shards, no metrics, no fault points. It exists for two
//! reasons:
//!
//! 1. `tests/tests/olap_equivalence.rs` proves the sharded engine
//!    reproduces these tables **bit for bit** (same
//!    [`Table::fingerprint`](openbi_table::Table::fingerprint)) at every
//!    shard count, and
//! 2. `cube_bench` measures the sharded engine's speedup against this
//!    baseline, in the same process on the same facts.
//!
//! The one shared substrate change beneath both implementations — and
//! therefore part of the baseline, not a rewrite delta — is that
//! `group_by`'s `Sum`/`Mean` run on the exact order-independent
//! [`ExactSum`](openbi_table::ExactSum) accumulator, which is what makes
//! bitwise equality achievable for *any* row partitioning in the first
//! place.
//!
//! It shares the [`Measure`] input spec with the live engine (the same
//! convention as `openbi::mining::reference` sharing `AlgorithmSpec`)
//! but freezes everything else. Do not "improve" this module; its value
//! is that it does not move.

#![allow(missing_docs)]

use crate::cube::Measure;
use openbi_table::{group_by, Aggregate, Result, Table, TableError};

fn to_aggregate(measure: &Measure) -> Aggregate {
    match measure {
        Measure::Sum(c) => Aggregate::Sum(c.clone()),
        Measure::Mean(c) => Aggregate::Mean(c.clone()),
        Measure::Count(c) => Aggregate::Count(c.clone()),
        Measure::Min(c) => Aggregate::Min(c.clone()),
        Measure::Max(c) => Aggregate::Max(c.clone()),
    }
}

/// The frozen pre-rewrite cube: a fact table plus declared dimensions
/// and measures, aggregated via `group_by`.
#[derive(Debug, Clone)]
pub struct Cube {
    facts: Table,
    dimensions: Vec<String>,
    measures: Vec<Measure>,
}

impl Cube {
    /// Build a cube, validating that dimensions and measure columns
    /// exist.
    pub fn new(facts: Table, dimensions: &[&str], measures: Vec<Measure>) -> Result<Self> {
        for d in dimensions {
            facts.column(d)?;
        }
        for m in &measures {
            match m {
                Measure::Sum(c)
                | Measure::Mean(c)
                | Measure::Count(c)
                | Measure::Min(c)
                | Measure::Max(c) => {
                    facts.column(c)?;
                }
            }
        }
        if dimensions.is_empty() {
            return Err(TableError::InvalidArgument(
                "a cube needs at least one dimension".to_string(),
            ));
        }
        Ok(Cube {
            facts,
            dimensions: dimensions.iter().map(|s| s.to_string()).collect(),
            measures,
        })
    }

    /// The declared dimensions.
    pub fn dimensions(&self) -> &[String] {
        &self.dimensions
    }

    /// The underlying fact table.
    pub fn facts(&self) -> &Table {
        &self.facts
    }

    /// Roll up to the named subset of dimensions (must be declared).
    pub fn rollup(&self, dims: &[&str]) -> Result<Table> {
        for d in dims {
            if !self.dimensions.iter().any(|x| x == d) {
                return Err(TableError::InvalidArgument(format!(
                    "{d} is not a declared dimension"
                )));
            }
        }
        let aggregates: Vec<Aggregate> = self.measures.iter().map(to_aggregate).collect();
        group_by(&self.facts, dims, &aggregates)
    }

    /// Slice: fix one dimension to a value, returning a cube over the
    /// remaining facts.
    pub fn slice(&self, dimension: &str, value: &str) -> Result<Cube> {
        if !self.dimensions.iter().any(|x| x == dimension) {
            return Err(TableError::InvalidArgument(format!(
                "{dimension} is not a declared dimension"
            )));
        }
        let col_idx = self
            .facts
            .column_names()
            .iter()
            .position(|n| *n == dimension)
            .expect("validated dimension");
        let facts = self.facts.filter(|row| row[col_idx].to_string() == value);
        Ok(Cube {
            facts,
            dimensions: self.dimensions.clone(),
            measures: self.measures.clone(),
        })
    }

    /// Dice: keep rows where `dimension`'s value is in `values`.
    pub fn dice(&self, dimension: &str, values: &[&str]) -> Result<Cube> {
        if !self.dimensions.iter().any(|x| x == dimension) {
            return Err(TableError::InvalidArgument(format!(
                "{dimension} is not a declared dimension"
            )));
        }
        let col_idx = self
            .facts
            .column_names()
            .iter()
            .position(|n| *n == dimension)
            .expect("validated dimension");
        let facts = self.facts.filter(|row| {
            let v = row[col_idx].to_string();
            values.iter().any(|x| *x == v)
        });
        Ok(Cube {
            facts,
            dimensions: self.dimensions.clone(),
            measures: self.measures.clone(),
        })
    }

    /// Grand total: all measures over all facts (single-row table with a
    /// synthetic `all` dimension).
    pub fn total(&self) -> Result<Table> {
        let mut with_all = self.facts.clone();
        with_all.add_column(openbi_table::Column::from_str_values(
            "__all__",
            vec!["all"; self.facts.n_rows()],
        ))?;
        let aggregates: Vec<Aggregate> = self.measures.iter().map(to_aggregate).collect();
        let mut out = group_by(&with_all, &["__all__"], &aggregates)?;
        out.drop_column("__all__")?;
        Ok(out)
    }
}
