//! Tabular reports and ASCII charts — the "reporting / dashboards" leg
//! of the OpenBI vision, rendered for a terminal.
//!
//! [`quality_table_report`] is where the paper's "data quality awareness
//! in user-friendly data mining" lands in the BI layer itself: every
//! aggregate row of a [`CubeResult`] is rendered next to its quality
//! flag, so a low-support or null-heavy cell can never masquerade as a
//! trustworthy number, and a degraded (shard-failed) build announces
//! itself instead of quietly serving partial totals.

use crate::accumulator::CellQuality;
use crate::shard::CubeResult;
use openbi_table::{Column, Result, Table};

/// Thresholds below/above which a cube cell is flagged in reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityThresholds {
    /// Minimum fact rows a cell must aggregate to be unflagged.
    pub min_support: u64,
    /// Maximum tolerated null fraction among measure cells.
    pub max_null_ratio: f64,
}

impl Default for QualityThresholds {
    fn default() -> Self {
        QualityThresholds {
            min_support: 5,
            max_null_ratio: 0.2,
        }
    }
}

impl QualityThresholds {
    /// The flag text for one cell: `"ok"` when it clears both
    /// thresholds, otherwise `"[!] …"` naming what failed.
    pub fn flag(&self, quality: &CellQuality) -> String {
        let low_support = quality.support < self.min_support;
        let many_nulls = quality.null_ratio > self.max_null_ratio;
        match (low_support, many_nulls) {
            (false, false) => "ok".to_string(),
            (true, false) => format!("[!] support={}", quality.support),
            (false, true) => format!("[!] nulls={:.0}%", quality.null_ratio * 100.0),
            (true, true) => format!(
                "[!] support={} nulls={:.0}%",
                quality.support,
                quality.null_ratio * 100.0
            ),
        }
    }
}

/// Render a quality-annotated rollup: the aggregate table with a
/// trailing `quality` column flagging every cell below the thresholds,
/// a flag-count footer, and — when shards failed — a `DEGRADED` banner
/// making the partial-ness of the numbers impossible to miss.
pub fn quality_table_report(
    title: &str,
    result: &CubeResult,
    thresholds: &QualityThresholds,
    max_rows: usize,
) -> Result<String> {
    let flags: Vec<String> = result.quality.iter().map(|q| thresholds.flag(q)).collect();
    let flagged = flags.iter().filter(|f| f.starts_with("[!]")).count();
    let mut annotated = result.table.clone();
    annotated.add_column(Column::from_str_values("quality", flags))?;
    let mut out = String::new();
    if result.is_degraded() {
        out.push_str(&format!(
            "!! DEGRADED: {}/{} shards failed; totals are partial !!\n",
            result.failed_shards.len(),
            result.total_shards
        ));
    }
    out.push_str(&table_report(title, &annotated, max_rows));
    out.push_str(&format!(
        "{flagged}/{} cells flagged (support < {} or null ratio > {:.0}%)\n",
        result.quality.len(),
        thresholds.min_support,
        thresholds.max_null_ratio * 100.0
    ));
    Ok(out)
}

/// Render a table as an aligned report with a title and row count.
pub fn table_report(title: &str, table: &Table, max_rows: usize) -> String {
    format!(
        "== {title} ==\n{}({} rows)\n",
        table.render(max_rows),
        table.n_rows()
    )
}

/// Horizontal ASCII bar chart of `(label, value)` pairs scaled to
/// `width` characters. Negative values are clamped to zero.
pub fn bar_chart(title: &str, data: &[(String, f64)], width: usize) -> String {
    let mut out = format!("== {title} ==\n");
    let max = data.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_width = data
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    for (label, value) in data {
        let filled = if max > 0.0 {
            ((value.max(0.0) / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_width$} | {} {value:.2}\n",
            "#".repeat(filled)
        ));
    }
    out
}

/// Bar chart built from a grouped table: one bar per row, labeled by
/// `label_column`, sized by `value_column`.
pub fn bar_chart_from_table(
    title: &str,
    table: &Table,
    label_column: &str,
    value_column: &str,
    width: usize,
) -> Result<String> {
    let labels = table.column(label_column)?;
    let values = table.column(value_column)?;
    let data: Vec<(String, f64)> = (0..table.n_rows())
        .map(|i| {
            (
                labels.get(i).expect("in-bounds").to_string(),
                values.get(i).expect("in-bounds").as_f64().unwrap_or(0.0),
            )
        })
        .collect();
    Ok(bar_chart(title, &data, width))
}

/// A one-line unicode sparkline of a numeric series.
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            TICKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{Cube, Measure};
    use crate::shard::CubeOptions;
    use std::sync::Arc;

    #[test]
    fn quality_flags_follow_thresholds() {
        let t = QualityThresholds {
            min_support: 3,
            max_null_ratio: 0.5,
        };
        let ok = CellQuality {
            support: 3,
            null_ratio: 0.5,
        };
        assert_eq!(t.flag(&ok), "ok");
        let thin = CellQuality {
            support: 2,
            null_ratio: 0.0,
        };
        assert_eq!(t.flag(&thin), "[!] support=2");
        let hollow = CellQuality {
            support: 9,
            null_ratio: 0.75,
        };
        assert_eq!(t.flag(&hollow), "[!] nulls=75%");
        let both = CellQuality {
            support: 1,
            null_ratio: 1.0,
        };
        assert!(t.flag(&both).contains("support=1"));
        assert!(t.flag(&both).contains("nulls=100%"));
    }

    #[test]
    fn quality_report_flags_and_footers() {
        let facts = Table::new(vec![
            Column::from_str_values("d", ["a", "a", "a", "b"]),
            Column::from_opt_f64("v", [Some(1.0), Some(2.0), Some(3.0), None]),
        ])
        .unwrap();
        let cube = Cube::new(facts, &["d"], vec![Measure::Sum("v".into())]).unwrap();
        let result = cube
            .rollup_quality(&["d"], &CubeOptions::with_shards(2))
            .unwrap();
        let thresholds = QualityThresholds {
            min_support: 2,
            max_null_ratio: 0.5,
        };
        let r = quality_table_report("spend", &result, &thresholds, 10).unwrap();
        assert!(r.contains("== spend =="));
        assert!(r.contains("quality"));
        assert!(r.contains("[!] support=1 nulls=100%"));
        assert!(r.contains("1/2 cells flagged"));
        assert!(!r.contains("DEGRADED"));
    }

    #[test]
    fn degraded_result_gets_a_banner() {
        use openbi_faults::{FaultPlan, FaultRule};
        let facts = Table::new(vec![
            Column::from_str_values("d", ["a", "b"]),
            Column::from_f64("v", [1.0, 2.0]),
        ])
        .unwrap();
        let cube = Cube::new(facts, &["d"], vec![Measure::Sum("v".into())]).unwrap();
        let plan = Arc::new(FaultPlan::new(7).with(FaultRule::error("olap.cube.build")));
        let result = cube
            .rollup_quality(
                &["d"],
                &CubeOptions {
                    shards: 2,
                    max_retries: 0,
                    fault_plan: Some(plan),
                },
            )
            .unwrap();
        assert!(result.is_degraded());
        let r = quality_table_report("spend", &result, &QualityThresholds::default(), 10).unwrap();
        assert!(r.contains("DEGRADED: 2/2 shards failed"));
    }

    #[test]
    fn table_report_has_title_and_count() {
        let t = Table::new(vec![Column::from_i64("a", [1, 2])]).unwrap();
        let r = table_report("demo", &t, 10);
        assert!(r.contains("== demo =="));
        assert!(r.contains("(2 rows)"));
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let r = bar_chart(
            "spend",
            &[("north".into(), 100.0), ("south".into(), 50.0)],
            20,
        );
        let north_bar = r.lines().nth(1).unwrap().matches('#').count();
        let south_bar = r.lines().nth(2).unwrap().matches('#').count();
        assert_eq!(north_bar, 20);
        assert_eq!(south_bar, 10);
    }

    #[test]
    fn bar_chart_handles_zero_and_negative() {
        let r = bar_chart("x", &[("a".into(), 0.0), ("b".into(), -5.0)], 10);
        assert!(!r.contains('#'));
    }

    #[test]
    fn bar_chart_from_table_reads_columns() {
        let t = Table::new(vec![
            Column::from_str_values("d", ["n", "s"]),
            Column::from_f64("v", [4.0, 2.0]),
        ])
        .unwrap();
        let r = bar_chart_from_table("t", &t, "d", "v", 8).unwrap();
        assert!(r.contains("n"));
        assert!(r.lines().nth(1).unwrap().contains("########"));
        assert!(bar_chart_from_table("t", &t, "nope", "v", 8).is_err());
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁");
    }
}
