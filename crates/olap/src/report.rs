//! Tabular reports and ASCII charts — the "reporting / dashboards" leg
//! of the OpenBI vision, rendered for a terminal.

use openbi_table::{Result, Table};

/// Render a table as an aligned report with a title and row count.
pub fn table_report(title: &str, table: &Table, max_rows: usize) -> String {
    format!(
        "== {title} ==\n{}({} rows)\n",
        table.render(max_rows),
        table.n_rows()
    )
}

/// Horizontal ASCII bar chart of `(label, value)` pairs scaled to
/// `width` characters. Negative values are clamped to zero.
pub fn bar_chart(title: &str, data: &[(String, f64)], width: usize) -> String {
    let mut out = format!("== {title} ==\n");
    let max = data.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_width = data
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    for (label, value) in data {
        let filled = if max > 0.0 {
            ((value.max(0.0) / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_width$} | {} {value:.2}\n",
            "#".repeat(filled)
        ));
    }
    out
}

/// Bar chart built from a grouped table: one bar per row, labeled by
/// `label_column`, sized by `value_column`.
pub fn bar_chart_from_table(
    title: &str,
    table: &Table,
    label_column: &str,
    value_column: &str,
    width: usize,
) -> Result<String> {
    let labels = table.column(label_column)?;
    let values = table.column(value_column)?;
    let data: Vec<(String, f64)> = (0..table.n_rows())
        .map(|i| {
            (
                labels.get(i).expect("in-bounds").to_string(),
                values.get(i).expect("in-bounds").as_f64().unwrap_or(0.0),
            )
        })
        .collect();
    Ok(bar_chart(title, &data, width))
}

/// A one-line unicode sparkline of a numeric series.
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            TICKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    #[test]
    fn table_report_has_title_and_count() {
        let t = Table::new(vec![Column::from_i64("a", [1, 2])]).unwrap();
        let r = table_report("demo", &t, 10);
        assert!(r.contains("== demo =="));
        assert!(r.contains("(2 rows)"));
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let r = bar_chart(
            "spend",
            &[("north".into(), 100.0), ("south".into(), 50.0)],
            20,
        );
        let north_bar = r.lines().nth(1).unwrap().matches('#').count();
        let south_bar = r.lines().nth(2).unwrap().matches('#').count();
        assert_eq!(north_bar, 20);
        assert_eq!(south_bar, 10);
    }

    #[test]
    fn bar_chart_handles_zero_and_negative() {
        let r = bar_chart("x", &[("a".into(), 0.0), ("b".into(), -5.0)], 10);
        assert!(!r.contains('#'));
    }

    #[test]
    fn bar_chart_from_table_reads_columns() {
        let t = Table::new(vec![
            Column::from_str_values("d", ["n", "s"]),
            Column::from_f64("v", [4.0, 2.0]),
        ])
        .unwrap();
        let r = bar_chart_from_table("t", &t, "d", "v", 8).unwrap();
        assert!(r.contains("n"));
        assert!(r.lines().nth(1).unwrap().contains("########"));
        assert!(bar_chart_from_table("t", &t, "nope", "v", 8).is_err());
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁");
    }
}
