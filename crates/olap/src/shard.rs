//! The sharded, parallel cube build engine (DESIGN.md §14).
//!
//! The fact table is partitioned into **contiguous row shards**
//! ([`ShardPlan::contiguous`]); each shard runs a single-pass columnar
//! aggregation kernel producing a map of group key → [`CellState`] with
//! groups in first-seen order *within the shard*; shard maps are then
//! merged **in shard order**. Why that is bitwise-identical to the
//! frozen single-threaded [`crate::reference`] at any shard count:
//!
//! * **Group order** — shards are contiguous and ordered, and the merge
//!   walks them in shard order with first-seen-wins insertion, so a
//!   group's first appearance in the merged output equals its first
//!   appearance in global row order: exactly `group_by`'s ordering.
//! * **Sum / Mean** — [`ExactSum`](openbi_table::ExactSum) partial sums
//!   merge without rounding, so the single final rounding sees the same
//!   exact total regardless of partitioning; mean divides once, at
//!   readout, by the exact combined count.
//! * **Count** — integer addition.
//! * **Min / Max** — strict-comparison folds where first-seen wins
//!   ties and NaN never beats the incumbent; first-seen-wins composes
//!   over contiguous shards merged in shard order, so the merge equals
//!   the sequential fold.
//!
//! Each shard build passes the `olap.cube.build` fault point (keyed on
//! the shard index) with bounded retry; shards whose retries are
//! exhausted are recorded in [`CubeResult::failed_shards`] and the cube
//! degrades to the surviving rows rather than aborting — the dashboard
//! renders the degradation banner (DESIGN.md §10's graceful-degradation
//! contract applied to the serving tier).
//!
//! Observability: `olap.cube.build.seconds`, `olap.shard.seconds`
//! histograms, `olap.cube.cells` / `olap.shard.retries` /
//! `olap.shard.failures` counters — all through the `openbi-obs` global
//! slot, free when nothing is installed.

use crate::accumulator::{CellQuality, CellState};
use crate::cube::Measure;
use openbi_faults::FaultPlan;
use openbi_table::{Column, ColumnData, DataType, Result, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The fault point every shard build passes (keyed on shard index).
pub const CUBE_BUILD_FAULT_POINT: &str = "olap.cube.build";

/// Options for a sharded cube build.
#[derive(Debug, Clone, Default)]
pub struct CubeOptions {
    /// Number of row shards; `0` means one per available core (capped
    /// at 8). The result is bitwise-identical at any value.
    pub shards: usize,
    /// Retries per shard when `olap.cube.build` fires an error fault.
    pub max_retries: u32,
    /// Explicit fault plan; falls back to the process-global plan
    /// ([`openbi_faults::active`]) when `None`.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl CubeOptions {
    /// A build with a fixed shard count and no fault handling.
    pub fn with_shards(shards: usize) -> Self {
        CubeOptions {
            shards,
            ..CubeOptions::default()
        }
    }

    fn resolved_shards(&self, n_rows: usize) -> usize {
        let requested = if self.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        } else {
            self.shards
        };
        requested.clamp(1, n_rows.max(1))
    }
}

/// A quality-annotated rollup: the aggregate table (bitwise-identical
/// to the reference cube's) plus per-row [`CellQuality`] and the fault
/// outcome of the build.
#[derive(Debug, Clone)]
pub struct CubeResult {
    /// Key columns then aggregate columns, one row per group —
    /// exactly the `group_by` layout.
    pub table: Table,
    /// One quality annotation per output row.
    pub quality: Vec<CellQuality>,
    /// Shard indices whose retries were exhausted; their rows are
    /// missing from `table` (graceful degradation).
    pub failed_shards: Vec<usize>,
    /// Total shards the build planned.
    pub total_shards: usize,
}

impl CubeResult {
    /// True when at least one shard failed and the cube is partial.
    pub fn is_degraded(&self) -> bool {
        !self.failed_shards.is_empty()
    }
}

/// A contiguous, ordered partition of `n_rows` into row ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Half-open `[start, end)` row ranges, in row order.
    pub bounds: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Split `n_rows` into `n_shards` balanced contiguous ranges (sizes
    /// differ by at most one, deterministic).
    pub fn contiguous(n_rows: usize, n_shards: usize) -> ShardPlan {
        let k = n_shards.max(1);
        ShardPlan {
            bounds: (0..k)
                .map(|i| (i * n_rows / k, (i + 1) * n_rows / k))
                .collect(),
        }
    }
}

/// A dictionary-encoded dimension column: every row mapped to the id of
/// its **rendered** value (`Value::to_string()` semantics, nulls become
/// `""` and merge with literal empty strings, exactly like `group_by`'s
/// string keys). Ids are assigned in first-seen row order, so they are
/// a pure function of the column — independent of shard count — and the
/// per-row hot path of the aggregation kernel touches only `u32`s, no
/// string allocation.
struct DimIndex {
    /// Row → value id.
    ids: Vec<u32>,
    /// Value id → rendered string (materialized into key columns once,
    /// per output row, at the end of the build).
    values: Vec<String>,
}

/// Intern `rendered` into `values`, deduplicating by final string (this
/// is what conflates a null cell with a literal `""`, `1.0` written two
/// ways, or NaNs with different payloads — whatever renders the same
/// groups the same, as in `group_by`).
fn intern_string(
    rendered: String,
    by_string: &mut HashMap<String, u32>,
    values: &mut Vec<String>,
) -> u32 {
    match by_string.get(rendered.as_str()) {
        Some(&id) => id,
        None => {
            let id = values.len() as u32;
            by_string.insert(rendered.clone(), id);
            values.push(rendered);
            id
        }
    }
}

impl DimIndex {
    fn new(col: &Column) -> DimIndex {
        let mut ids: Vec<u32> = Vec::with_capacity(col.len());
        let mut values: Vec<String> = Vec::new();
        let mut by_string: HashMap<String, u32> = HashMap::new();
        let mut null_id: Option<u32> = None;
        let mut intern_null = |by_string: &mut HashMap<String, u32>, values: &mut Vec<String>| {
            *null_id.get_or_insert_with(|| intern_string(String::new(), by_string, values))
        };
        match col.data() {
            ColumnData::Str(v) => {
                // Raw-value cache so repeated strings hash once without
                // rendering; the id still comes from the string table.
                let mut by_raw: HashMap<&str, u32> = HashMap::new();
                for cell in v {
                    ids.push(match cell {
                        Some(s) => match by_raw.get(s.as_str()) {
                            Some(&id) => id,
                            None => {
                                let id = intern_string(s.clone(), &mut by_string, &mut values);
                                by_raw.insert(s.as_str(), id);
                                id
                            }
                        },
                        None => intern_null(&mut by_string, &mut values),
                    });
                }
            }
            ColumnData::Int(v) => {
                let mut by_raw: HashMap<i64, u32> = HashMap::new();
                for cell in v {
                    ids.push(match cell {
                        Some(x) => match by_raw.get(x) {
                            Some(&id) => id,
                            None => {
                                let id = intern_string(x.to_string(), &mut by_string, &mut values);
                                by_raw.insert(*x, id);
                                id
                            }
                        },
                        None => intern_null(&mut by_string, &mut values),
                    });
                }
            }
            ColumnData::Float(v) => {
                // Cache on raw bits; dedup still happens on the rendered
                // string, so bit-distinct NaNs land in one group.
                let mut by_raw: HashMap<u64, u32> = HashMap::new();
                for cell in v {
                    ids.push(match cell {
                        Some(x) => match by_raw.get(&x.to_bits()) {
                            Some(&id) => id,
                            None => {
                                let id = intern_string(format!("{x}"), &mut by_string, &mut values);
                                by_raw.insert(x.to_bits(), id);
                                id
                            }
                        },
                        None => intern_null(&mut by_string, &mut values),
                    });
                }
            }
            ColumnData::Bool(v) => {
                let mut by_raw: [Option<u32>; 2] = [None, None];
                for cell in v {
                    ids.push(match cell {
                        Some(x) => match by_raw[*x as usize] {
                            Some(id) => id,
                            None => {
                                let id = intern_string(x.to_string(), &mut by_string, &mut values);
                                by_raw[*x as usize] = Some(id);
                                id
                            }
                        },
                        None => intern_null(&mut by_string, &mut values),
                    });
                }
            }
        }
        DimIndex { ids, values }
    }
}

/// Typed read-only view of a measure source column yielding each cell's
/// `(is_null, as_f64)` pair — the two facts every accumulator needs.
enum NumView<'a> {
    Int(&'a [Option<i64>]),
    Float(&'a [Option<f64>]),
    Str(&'a [Option<String>]),
    Bool(&'a [Option<bool>]),
}

impl<'a> NumView<'a> {
    fn new(col: &'a Column) -> NumView<'a> {
        match col.data() {
            ColumnData::Int(v) => NumView::Int(v),
            ColumnData::Float(v) => NumView::Float(v),
            ColumnData::Str(v) => NumView::Str(v),
            ColumnData::Bool(v) => NumView::Bool(v),
        }
    }

    fn cell(&self, row: usize) -> (bool, Option<f64>) {
        match self {
            NumView::Int(v) => match v[row] {
                Some(x) => (false, Some(x as f64)),
                None => (true, None),
            },
            NumView::Float(v) => match v[row] {
                Some(x) => (false, Some(x)),
                None => (true, None),
            },
            NumView::Str(v) => (v[row].is_none(), None),
            NumView::Bool(v) => match v[row] {
                Some(x) => (false, Some(if x { 1.0 } else { 0.0 })),
                None => (true, None),
            },
        }
    }
}

/// One shard's aggregation output: groups in first-seen (shard-local)
/// order, keyed by dimension value ids.
struct ShardAgg {
    keys: Vec<Vec<u32>>,
    states: Vec<CellState>,
}

/// What a shard worker came back with.
enum ShardOutcome {
    Done(ShardAgg),
    Failed,
}

/// Single-pass columnar aggregation of rows `[start, end)`.
fn aggregate_range(
    start: usize,
    end: usize,
    dims: &[DimIndex],
    quality_views: &[NumView<'_>],
    measure_view_of: &[usize],
    measures: &[Measure],
) -> ShardAgg {
    let mut keys: Vec<Vec<u32>> = Vec::new();
    let mut states: Vec<CellState> = Vec::new();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut scratch: Vec<u32> = Vec::with_capacity(dims.len());
    let mut cells: Vec<(bool, Option<f64>)> = vec![(true, None); quality_views.len()];
    for row in start..end {
        scratch.clear();
        for d in dims {
            scratch.push(d.ids[row]);
        }
        let slot = match index.get(scratch.as_slice()) {
            Some(&i) => i,
            None => {
                let i = states.len();
                keys.push(scratch.clone());
                index.insert(scratch.clone(), i);
                states.push(CellState::new(measures));
                i
            }
        };
        let state = &mut states[slot];
        state.support += 1;
        for (c, view) in cells.iter_mut().zip(quality_views) {
            *c = view.cell(row);
            if c.0 {
                state.null_cells += 1;
            }
        }
        for (acc, &vi) in state.accs.iter_mut().zip(measure_view_of) {
            let (is_null, num) = cells[vi];
            acc.update(is_null, num);
        }
    }
    ShardAgg { keys, states }
}

/// Build a quality-annotated rollup of `facts` grouped by `dims`
/// (empty `dims` = grand total: one group when the table has rows,
/// none when it is empty — matching `group_by` over a synthetic
/// constant key).
pub fn build_cube(
    facts: &Table,
    dims: &[&str],
    measures: &[Measure],
    options: &CubeOptions,
) -> Result<CubeResult> {
    let build_started = Instant::now();
    for d in dims {
        facts.column(d)?;
    }
    // Distinct measure source columns, in first-declared order: the
    // quality mask runs over these once per row even when several
    // measures share a column.
    let mut quality_cols: Vec<&str> = Vec::new();
    let mut measure_view_of: Vec<usize> = Vec::with_capacity(measures.len());
    for m in measures {
        let c = m.column();
        facts.column(c)?;
        let vi = match quality_cols.iter().position(|q| *q == c) {
            Some(i) => i,
            None => {
                quality_cols.push(c);
                quality_cols.len() - 1
            }
        };
        measure_view_of.push(vi);
    }
    // Dictionary-encode the dimension columns up front (in parallel —
    // one column per thread). Encoding is a pure per-column function of
    // the data, so it is identical at every shard count.
    let dim_views: Vec<DimIndex> = if dims.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = dims
                .iter()
                .map(|d| {
                    let col = facts.column(d).expect("validated");
                    scope.spawn(move || DimIndex::new(col))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(index) => index,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    } else {
        dims.iter()
            .map(|d| DimIndex::new(facts.column(d).expect("validated")))
            .collect()
    };
    let quality_views: Vec<NumView<'_>> = quality_cols
        .iter()
        .map(|c| NumView::new(facts.column(c).expect("validated")))
        .collect();

    let n_shards = options.resolved_shards(facts.n_rows());
    let plan = ShardPlan::contiguous(facts.n_rows(), n_shards);
    let fault_plan = options.fault_plan.clone().or_else(openbi_faults::active);

    let run_shard = |shard: usize, &(start, end): &(usize, usize)| -> ShardOutcome {
        let shard_started = Instant::now();
        let mut attempt: u32 = 0;
        let outcome = loop {
            let attempt_result = match &fault_plan {
                Some(p) => p.fire(CUBE_BUILD_FAULT_POINT, shard as u64, attempt),
                None => Ok(()),
            };
            match attempt_result {
                Ok(()) => {
                    break ShardOutcome::Done(aggregate_range(
                        start,
                        end,
                        &dim_views,
                        &quality_views,
                        &measure_view_of,
                        measures,
                    ))
                }
                Err(_) if attempt < options.max_retries => {
                    openbi_obs::counter_add("olap.shard.retries", 1);
                    attempt += 1;
                }
                Err(_) => {
                    openbi_obs::counter_add("olap.shard.failures", 1);
                    break ShardOutcome::Failed;
                }
            }
        };
        openbi_obs::observe_duration("olap.shard.seconds", shard_started.elapsed());
        outcome
    };

    let outcomes: Vec<ShardOutcome> = if plan.bounds.len() == 1 {
        vec![run_shard(0, &plan.bounds[0])]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .bounds
                .iter()
                .enumerate()
                .map(|(shard, range)| scope.spawn(move || run_shard(shard, range)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };

    // Merge shard maps in shard order: first-seen-wins insertion over
    // contiguous ordered shards reproduces global first-seen order.
    let mut keys: Vec<Vec<u32>> = Vec::new();
    let mut states: Vec<CellState> = Vec::new();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut failed_shards: Vec<usize> = Vec::new();
    for (shard, outcome) in outcomes.into_iter().enumerate() {
        let agg = match outcome {
            ShardOutcome::Done(agg) => agg,
            ShardOutcome::Failed => {
                failed_shards.push(shard);
                continue;
            }
        };
        for (key, state) in agg.keys.into_iter().zip(agg.states) {
            match index.get(key.as_slice()) {
                Some(&i) => states[i].merge(&state),
                None => {
                    let i = states.len();
                    index.insert(key.clone(), i);
                    keys.push(key);
                    states.push(state);
                }
            }
        }
    }

    // Materialize the output table in the exact group_by layout.
    let mut out_cols: Vec<Column> = Vec::with_capacity(dims.len() + measures.len());
    for (i, d) in dims.iter().enumerate() {
        let values: Vec<String> = keys
            .iter()
            .map(|k| dim_views[i].values[k[i] as usize].clone())
            .collect();
        out_cols.push(Column::from_str_values(*d, values));
    }
    for (mi, m) in measures.iter().enumerate() {
        let values: Vec<Value> = states.iter().map(|s| s.accs[mi].value()).collect();
        let dtype = match m {
            Measure::Count(_) => DataType::Int,
            _ => DataType::Float,
        };
        out_cols.push(Column::from_values(m.output_name(), dtype, values)?);
    }
    let table = Table::new(out_cols)?;
    let quality: Vec<CellQuality> = states
        .iter()
        .map(|s| s.quality(quality_cols.len()))
        .collect();

    openbi_obs::counter_add("olap.cube.cells", table.n_rows() as u64);
    openbi_obs::observe_duration("olap.cube.build.seconds", build_started.elapsed());
    Ok(CubeResult {
        table,
        quality,
        failed_shards,
        total_shards: plan.bounds.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_faults::FaultRule;

    fn facts() -> Table {
        Table::new(vec![
            Column::from_str_values("d", ["a", "b", "a", "b", "a", "c"]),
            Column::from_opt_f64(
                "v",
                [Some(1.0), Some(2.0), None, Some(4.0), Some(5.0), None],
            ),
        ])
        .unwrap()
    }

    fn measures() -> Vec<Measure> {
        vec![
            Measure::Sum("v".into()),
            Measure::Mean("v".into()),
            Measure::Count("v".into()),
        ]
    }

    #[test]
    fn shard_plan_is_contiguous_and_balanced() {
        let p = ShardPlan::contiguous(10, 4);
        assert_eq!(p.bounds.first().unwrap().0, 0);
        assert_eq!(p.bounds.last().unwrap().1, 10);
        for w in p.bounds.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        let sizes: Vec<usize> = p.bounds.iter().map(|(s, e)| e - s).collect();
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        assert_eq!(ShardPlan::contiguous(0, 4).bounds, vec![(0, 0); 4]);
        assert_eq!(ShardPlan::contiguous(5, 1).bounds, vec![(0, 5)]);
    }

    #[test]
    fn shard_count_does_not_change_the_bits() {
        let f = facts();
        let one = build_cube(&f, &["d"], &measures(), &CubeOptions::with_shards(1)).unwrap();
        for shards in [2, 3, 4, 6] {
            let many =
                build_cube(&f, &["d"], &measures(), &CubeOptions::with_shards(shards)).unwrap();
            assert_eq!(
                one.table.fingerprint(),
                many.table.fingerprint(),
                "{shards} shards"
            );
            assert_eq!(one.quality, many.quality, "{shards} shards");
        }
    }

    #[test]
    fn quality_annotation_counts_nulls_and_support() {
        let f = facts();
        let r = build_cube(&f, &["d"], &measures(), &CubeOptions::with_shards(2)).unwrap();
        // Groups in first-seen order: a (3 rows, 1 null), b (2 rows),
        // c (1 row, 1 null). One distinct measure column (`v`).
        assert_eq!(r.quality.len(), 3);
        assert_eq!(r.quality[0].support, 3);
        assert!((r.quality[0].null_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.quality[1].support, 2);
        assert_eq!(r.quality[1].null_ratio, 0.0);
        assert_eq!(r.quality[2].support, 1);
        assert_eq!(r.quality[2].null_ratio, 1.0);
        assert!(!r.is_degraded());
    }

    #[test]
    fn empty_dims_is_a_grand_total() {
        let f = facts();
        let r = build_cube(&f, &[], &measures(), &CubeOptions::with_shards(3)).unwrap();
        assert_eq!(r.table.n_rows(), 1);
        assert_eq!(r.table.get("sum(v)", 0).unwrap(), Value::Float(12.0));
        assert_eq!(r.quality[0].support, 6);
        let empty = Table::new(vec![Column::from_opt_f64("v", Vec::<Option<f64>>::new())]).unwrap();
        let r = build_cube(&empty, &[], &measures(), &CubeOptions::default()).unwrap();
        assert_eq!(r.table.n_rows(), 0);
        assert!(r.quality.is_empty());
    }

    #[test]
    fn exhausted_retries_degrade_instead_of_aborting() {
        let plan = Arc::new(FaultPlan::new(7).with(FaultRule::error(CUBE_BUILD_FAULT_POINT)));
        // Default plan semantics: attempt 0 fails, attempt 1 succeeds.
        let retried = build_cube(
            &facts(),
            &["d"],
            &measures(),
            &CubeOptions {
                shards: 3,
                max_retries: 1,
                fault_plan: Some(Arc::clone(&plan)),
            },
        )
        .unwrap();
        assert!(!retried.is_degraded());
        let clean =
            build_cube(&facts(), &["d"], &measures(), &CubeOptions::with_shards(3)).unwrap();
        assert_eq!(clean.table.fingerprint(), retried.table.fingerprint());

        // No retry budget: every shard fails; the cube is empty but the
        // call still succeeds and reports the damage.
        let degraded = build_cube(
            &facts(),
            &["d"],
            &measures(),
            &CubeOptions {
                shards: 3,
                max_retries: 0,
                fault_plan: Some(plan),
            },
        )
        .unwrap();
        assert!(degraded.is_degraded());
        assert_eq!(degraded.failed_shards, vec![0, 1, 2]);
        assert_eq!(degraded.total_shards, 3);
        assert_eq!(degraded.table.n_rows(), 0);
    }

    #[test]
    fn missing_columns_are_errors() {
        assert!(build_cube(&facts(), &["nope"], &measures(), &CubeOptions::default()).is_err());
        assert!(build_cube(
            &facts(),
            &["d"],
            &[Measure::Sum("nope".into())],
            &CubeOptions::default()
        )
        .is_err());
    }
}
