//! Memoization of quality profiles.
//!
//! A [`QualityProfile`] is a pure function of the table's content and the
//! [`MeasureOptions`], so re-profiling an unchanged table (every pipeline
//! run measures at least twice, and grid experiments re-profile the same
//! degraded tables across folds) is wasted work. The [`ProfileCache`]
//! keys on `(Table::fingerprint(), options)` — a 128-bit content hash,
//! not identity — so any table with identical columns, names, dtypes, and
//! cells hits, no matter how it was produced.
//!
//! Hits and misses are counted in the `quality.cache.hits` /
//! `quality.cache.misses` metrics when an [`openbi_obs`] registry is
//! installed.

use crate::measure::{measure_profile, MeasureOptions};
use crate::profile::QualityProfile;
use openbi_table::Table;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default capacity of the global cache (profiles are a few hundred
/// bytes, so this is deliberately generous).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Everything besides table content that can change a profile.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OptionsKey {
    target: Option<String>,
    /// Sorted — exclusion order does not affect the profile.
    exclude: Vec<String>,
    redundancy_threshold_bits: u64,
    noise_k: usize,
    noise_max_rows: usize,
    noise_seed: u64,
}

impl OptionsKey {
    fn new(options: &MeasureOptions) -> Self {
        let mut exclude = options.exclude.clone();
        exclude.sort_unstable();
        OptionsKey {
            target: options.target.clone(),
            exclude,
            redundancy_threshold_bits: options.redundancy_threshold.to_bits(),
            noise_k: options.noise_k,
            noise_max_rows: options.noise_max_rows,
            noise_seed: options.noise_seed,
        }
    }
}

type CacheKey = (u128, OptionsKey);

struct CacheState {
    map: HashMap<CacheKey, QualityProfile>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A bounded, thread-safe memo table for [`measure_profile`] results.
pub struct ProfileCache {
    inner: Mutex<CacheState>,
    enabled: AtomicBool,
    capacity: usize,
}

impl ProfileCache {
    /// Create an enabled cache holding at most `capacity` profiles
    /// (FIFO eviction; a capacity of 0 disables storage entirely).
    pub fn new(capacity: usize) -> Self {
        ProfileCache {
            inner: Mutex::new(CacheState {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            enabled: AtomicBool::new(true),
            capacity,
        }
    }

    /// The process-wide cache used by [`measure_profile_cached`].
    pub fn global() -> &'static ProfileCache {
        static GLOBAL: OnceLock<ProfileCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ProfileCache::new(DEFAULT_CACHE_CAPACITY))
    }

    fn state(&self) -> MutexGuard<'_, CacheState> {
        // A panic while holding the lock leaves only a stale memo table;
        // the data is still valid, so poisoning is ignored.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Measure `table`, serving a cached profile when one exists for the
    /// same content fingerprint and options.
    pub fn measure(&self, table: &Table, options: &MeasureOptions) -> QualityProfile {
        if !self.is_enabled() || self.capacity == 0 {
            return measure_profile(table, options);
        }
        let key: CacheKey = (table.fingerprint(), OptionsKey::new(options));
        if let Some(hit) = self.state().map.get(&key).cloned() {
            openbi_obs::counter_add("quality.cache.hits", 1);
            return hit;
        }
        openbi_obs::counter_add("quality.cache.misses", 1);
        // Measure outside the lock: profiling is the expensive part and
        // concurrent misses on different tables must not serialize.
        let profile = measure_profile(table, options);
        let mut state = self.state();
        if !state.map.contains_key(&key) {
            if state.map.len() >= self.capacity {
                if let Some(oldest) = state.order.pop_front() {
                    state.map.remove(&oldest);
                }
            }
            state.order.push_back(key.clone());
            state.map.insert(key, profile.clone());
        }
        profile
    }

    /// Number of cached profiles.
    pub fn len(&self) -> usize {
        self.state().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached profile.
    pub fn clear(&self) {
        let mut state = self.state();
        state.map.clear();
        state.order.clear();
    }

    /// Turn lookups and insertions on or off (measurement always works).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether lookups and insertions are active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// [`measure_profile`] through the process-wide [`ProfileCache`].
pub fn measure_profile_cached(table: &Table, options: &MeasureOptions) -> QualityProfile {
    ProfileCache::global().measure(table, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn sample(shift: i64) -> Table {
        Table::new(vec![
            Column::from_i64("a", (shift..shift + 8).collect::<Vec<i64>>()),
            Column::from_str_values("class", ["x", "y", "x", "y", "x", "y", "x", "y"]),
        ])
        .unwrap()
    }

    #[test]
    fn identical_content_hits() {
        let cache = ProfileCache::new(16);
        let opts = MeasureOptions::with_target("class");
        let first = cache.measure(&sample(0), &opts);
        assert_eq!(cache.len(), 1);
        // A structurally identical, separately built table hits.
        let second = cache.measure(&sample(0), &opts);
        assert_eq!(cache.len(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn content_or_options_change_misses() {
        let cache = ProfileCache::new(16);
        let opts = MeasureOptions::with_target("class");
        cache.measure(&sample(0), &opts);
        cache.measure(&sample(1), &opts);
        assert_eq!(cache.len(), 2, "different content, different entry");
        let other = MeasureOptions {
            noise_k: 3,
            ..MeasureOptions::with_target("class")
        };
        cache.measure(&sample(0), &other);
        assert_eq!(cache.len(), 3, "different options, different entry");
    }

    #[test]
    fn exclusion_order_is_canonical() {
        let cache = ProfileCache::new(16);
        let a = MeasureOptions {
            exclude: vec!["u".into(), "v".into()],
            ..Default::default()
        };
        let b = MeasureOptions {
            exclude: vec!["v".into(), "u".into()],
            ..Default::default()
        };
        cache.measure(&sample(0), &a);
        cache.measure(&sample(0), &b);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = ProfileCache::new(2);
        let opts = MeasureOptions::default();
        for shift in 0..4 {
            cache.measure(&sample(shift), &opts);
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = ProfileCache::new(16);
        cache.set_enabled(false);
        let opts = MeasureOptions::default();
        let p = cache.measure(&sample(0), &opts);
        assert!(cache.is_empty());
        cache.set_enabled(true);
        assert_eq!(cache.measure(&sample(0), &opts), p);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_profile_equals_direct_measurement() {
        let cache = ProfileCache::new(16);
        let opts = MeasureOptions::with_target("class");
        let t = sample(3);
        let direct = measure_profile(&t, &opts);
        let via_cache = cache.measure(&t, &opts);
        let repeat = cache.measure(&t, &opts);
        assert_eq!(direct, via_cache);
        assert_eq!(direct, repeat);
    }
}
