//! Duplicate *elimination*: record linkage with blocking, similarity
//! matching, transitive clustering (union–find) and survivorship
//! merging — the cleaning step the paper's related work opens with
//! (Ananthakrishna et al. \[1\], Elmagarmid et al. \[5\]).
//!
//! The measurement side lives in [`crate::measure::duplicates`]; this
//! module actually repairs the data.

use openbi_table::{stats, Result, Table, TableError, Value};
use std::collections::HashMap;

/// Configuration for record linkage.
#[derive(Debug, Clone)]
pub struct LinkageConfig {
    /// Column used for blocking: only rows sharing a block key are
    /// compared (`None` = single block; quadratic).
    pub blocking_column: Option<String>,
    /// Normalized row distance at or below which two rows match.
    pub threshold: f64,
    /// Columns ignored during similarity (identifiers etc.).
    pub ignore: Vec<String>,
}

impl Default for LinkageConfig {
    fn default() -> Self {
        LinkageConfig {
            blocking_column: None,
            threshold: 0.1,
            ignore: vec![],
        }
    }
}

/// Disjoint-set forest over row indices.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Normalized string similarity: 1 for equal (after trim/lowercase),
/// otherwise a bigram Dice coefficient — robust to the case/whitespace
/// manglings the inconsistency injector produces.
pub fn string_similarity(a: &str, b: &str) -> f64 {
    let a = a.trim().to_lowercase();
    let b = b.trim().to_lowercase();
    if a == b {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let bigrams = |s: &str| -> Vec<(char, char)> {
        let chars: Vec<char> = s.chars().collect();
        chars.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ba = bigrams(&a);
    let bb = bigrams(&b);
    if ba.is_empty() || bb.is_empty() {
        return if a == b { 1.0 } else { 0.0 };
    }
    let mut counts: HashMap<(char, char), usize> = HashMap::new();
    for g in &ba {
        *counts.entry(*g).or_insert(0) += 1;
    }
    let mut overlap = 0usize;
    for g in &bb {
        if let Some(c) = counts.get_mut(g) {
            if *c > 0 {
                *c -= 1;
                overlap += 1;
            }
        }
    }
    2.0 * overlap as f64 / (ba.len() + bb.len()) as f64
}

/// Normalized distance between two rows over the compared columns:
/// numeric = range-normalized difference, strings = 1 − similarity.
/// Columns where either side is null are skipped (a missing field is
/// no evidence against a match — standard record-linkage practice);
/// rows sharing no observed column are maximally distant.
fn row_distance(
    table: &Table,
    compared: &[usize],
    ranges: &HashMap<usize, (f64, f64)>,
    a: usize,
    b: usize,
) -> f64 {
    let mut total = 0.0;
    let mut shared = 0usize;
    for &ci in compared {
        let col = table.column_at(ci).expect("validated index");
        let va = col.get(a).expect("in-bounds");
        let vb = col.get(b).expect("in-bounds");
        let d = match (&va, &vb) {
            (Value::Null, _) | (_, Value::Null) => continue,
            (Value::Str(x), Value::Str(y)) => 1.0 - string_similarity(x, y),
            _ => match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => match ranges.get(&ci) {
                    Some((lo, hi)) if hi > lo => ((x - y).abs() / (hi - lo)).min(1.0),
                    _ => {
                        if x == y {
                            0.0
                        } else {
                            1.0
                        }
                    }
                },
                _ => {
                    if va == vb {
                        0.0
                    } else {
                        1.0
                    }
                }
            },
        };
        total += d;
        shared += 1;
    }
    if shared == 0 {
        1.0
    } else {
        total / shared as f64
    }
}

/// Find duplicate clusters: groups of row indices (size ≥ 2) whose
/// members transitively match under the config.
pub fn find_duplicate_clusters(table: &Table, config: &LinkageConfig) -> Result<Vec<Vec<usize>>> {
    if !(0.0..=1.0).contains(&config.threshold) {
        return Err(TableError::InvalidArgument(
            "linkage threshold must be in [0,1]".to_string(),
        ));
    }
    let n = table.n_rows();
    // Columns compared: everything except ignored and the blocking key.
    let compared: Vec<usize> = table
        .column_names()
        .iter()
        .enumerate()
        .filter(|(_, name)| {
            !config.ignore.iter().any(|c| c == *name)
                && config.blocking_column.as_deref() != Some(*name)
        })
        .map(|(i, _)| i)
        .collect();
    let mut ranges: HashMap<usize, (f64, f64)> = HashMap::new();
    for &ci in &compared {
        let col = table.column_at(ci).expect("validated index");
        if !col.dtype().is_numeric() {
            continue;
        }
        if let Ok(summary) = stats::summarize(col) {
            ranges.insert(ci, (summary.min, summary.max));
        }
    }
    // Blocking.
    let mut blocks: HashMap<String, Vec<usize>> = HashMap::new();
    match &config.blocking_column {
        Some(bc) => {
            let col = table.column(bc)?;
            for i in 0..n {
                let key = match col.get(i)? {
                    Value::Null => "\u{0}null".to_string(),
                    Value::Str(s) => s.trim().to_lowercase(),
                    v => v.to_string(),
                };
                blocks.entry(key).or_default().push(i);
            }
        }
        None => {
            blocks.insert(String::new(), (0..n).collect());
        }
    }
    let mut uf = UnionFind::new(n);
    for rows in blocks.values() {
        for i in 1..rows.len() {
            for j in 0..i {
                if row_distance(table, &compared, &ranges, rows[i], rows[j]) <= config.threshold {
                    uf.union(rows[i], rows[j]);
                }
            }
        }
    }
    let mut clusters: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        clusters.entry(uf.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = clusters.into_values().filter(|c| c.len() >= 2).collect();
    out.sort_by_key(|c| c[0]);
    Ok(out)
}

/// Survivorship: merge each duplicate cluster into one record — numeric
/// columns take the mean, strings take the most common (first on tie)
/// non-null value — and return the deduplicated table (survivors replace
/// the cluster's first row; other members are dropped; row order kept).
pub fn merge_duplicates(table: &Table, config: &LinkageConfig) -> Result<(Table, usize)> {
    let clusters = find_duplicate_clusters(table, config)?;
    let mut out = table.clone();
    let mut drop = vec![false; table.n_rows()];
    for cluster in &clusters {
        let survivor = cluster[0];
        for &member in &cluster[1..] {
            drop[member] = true;
        }
        for col in table.columns() {
            let merged: Value = if col.dtype().is_numeric() {
                let vals: Vec<f64> = cluster
                    .iter()
                    .filter_map(|&i| col.get(i).expect("in-bounds").as_f64())
                    .collect();
                if vals.is_empty() {
                    Value::Null
                } else {
                    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                    match col.dtype() {
                        openbi_table::DataType::Int => Value::Int(mean.round() as i64),
                        _ => Value::Float(mean),
                    }
                }
            } else {
                let mut counts: Vec<(Value, usize)> = Vec::new();
                for &i in cluster {
                    let v = col.get(i).expect("in-bounds");
                    if v.is_null() {
                        continue;
                    }
                    if let Some(e) = counts.iter_mut().find(|(x, _)| *x == v) {
                        e.1 += 1;
                    } else {
                        counts.push((v, 1));
                    }
                }
                counts
                    .into_iter()
                    .max_by_key(|(_, c)| *c)
                    .map(|(v, _)| v)
                    .unwrap_or(Value::Null)
            };
            out.set(col.name().to_string().as_str(), survivor, merged)?;
        }
    }
    let removed = drop.iter().filter(|d| **d).count();
    Ok((out.filter_by_index(|i| !drop[i]), removed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    /// Rows 0/1 are near-duplicates (mangled city, close pm10); row 3
    /// duplicates row 2 exactly; row 4 is unique.
    fn table() -> Table {
        Table::new(vec![
            Column::from_str_values("city", ["Alicante", " ALICANTE", "Elche", "Elche", "Alcoy"]),
            Column::from_f64("pm10", [21.5, 21.6, 33.0, 33.0, 12.0]),
            Column::from_opt_i64("sensors", [Some(4), None, Some(2), Some(2), Some(1)]),
        ])
        .unwrap()
    }

    #[test]
    fn string_similarity_handles_manglings() {
        assert_eq!(string_similarity("Alicante", " ALICANTE"), 1.0);
        assert!(string_similarity("Alicante", "Alicant") > 0.8);
        assert!(string_similarity("Alicante", "Elche") < 0.3);
        assert_eq!(string_similarity("", "x"), 0.0);
        assert_eq!(string_similarity("a", "a"), 1.0);
    }

    #[test]
    fn clusters_found_transitively() {
        let clusters = find_duplicate_clusters(&table(), &LinkageConfig::default()).unwrap();
        assert_eq!(clusters.len(), 2);
        assert!(clusters.contains(&vec![0, 1]));
        assert!(clusters.contains(&vec![2, 3]));
    }

    #[test]
    fn blocking_restricts_comparisons() {
        // Block on city: the mangled ALICANTE lands in the alicante
        // block (keys are normalized), so clusters are unchanged…
        let config = LinkageConfig {
            blocking_column: Some("city".into()),
            threshold: 0.2,
            ignore: vec![],
        };
        let clusters = find_duplicate_clusters(&table(), &config).unwrap();
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn merge_survivorship_numeric_mean_string_mode() {
        let (merged, removed) = merge_duplicates(&table(), &LinkageConfig::default()).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(merged.n_rows(), 3);
        // Survivor of {0,1}: pm10 mean, sensors from the non-null member.
        assert!((merged.get("pm10", 0).unwrap().as_f64().unwrap() - 21.55).abs() < 1e-9);
        assert_eq!(merged.get("sensors", 0).unwrap(), Value::Int(4));
        // The unique row survives untouched.
        assert_eq!(merged.get("city", 2).unwrap(), Value::Str("Alcoy".into()));
    }

    #[test]
    fn strict_threshold_finds_only_exact_pairs() {
        let config = LinkageConfig {
            threshold: 0.0,
            ..Default::default()
        };
        let clusters = find_duplicate_clusters(&table(), &config).unwrap();
        // With exact matching, only Elche/Elche (pm10 equal) cluster —
        // the mangled Alicante pair differs slightly in pm10.
        assert_eq!(clusters, vec![vec![2, 3]]);
    }

    #[test]
    fn invalid_threshold_rejected() {
        let config = LinkageConfig {
            threshold: 1.5,
            ..Default::default()
        };
        assert!(find_duplicate_clusters(&table(), &config).is_err());
    }

    #[test]
    fn no_duplicates_is_a_no_op() {
        let t = Table::new(vec![Column::from_f64("x", [1.0, 100.0, 200.0])]).unwrap();
        let (merged, removed) = merge_duplicates(&t, &LinkageConfig::default()).unwrap();
        assert_eq!(removed, 0);
        assert_eq!(merged, t);
    }

    #[test]
    fn ignored_columns_do_not_block_matches() {
        // Same record, different surrogate ids.
        let t = Table::new(vec![
            Column::from_i64("id", [1, 2]),
            Column::from_str_values("name", ["Ana", "Ana"]),
        ])
        .unwrap();
        let miss = find_duplicate_clusters(&t, &LinkageConfig::default()).unwrap();
        assert!(miss.is_empty(), "ids differ, rows treated distinct");
        let config = LinkageConfig {
            ignore: vec!["id".into()],
            ..Default::default()
        };
        let hit = find_duplicate_clusters(&t, &config).unwrap();
        assert_eq!(hit, vec![vec![0, 1]]);
    }
}
