//! Attribute (feature) noise: additive Gaussian perturbation of numeric
//! cells.

use super::{gauss, sample_indices, Injector};
use openbi_table::{stats, Result, Table, TableError, Value};
use rand::rngs::StdRng;

/// Adds `N(0, (sigma_factor × column_std)²)` noise to a fraction of the
/// cells of each numeric column (excluding the listed columns).
#[derive(Debug, Clone)]
pub struct AttributeNoiseInjector {
    /// Fraction of cells perturbed per column.
    pub ratio: f64,
    /// Noise magnitude as a multiple of the column standard deviation.
    pub sigma_factor: f64,
    /// Columns never perturbed.
    pub excluded: Vec<String>,
}

impl AttributeNoiseInjector {
    /// Create an injector perturbing `ratio` of cells at
    /// `sigma_factor`×std magnitude.
    pub fn new(ratio: f64, sigma_factor: f64) -> Self {
        AttributeNoiseInjector {
            ratio,
            sigma_factor,
            excluded: vec![],
        }
    }

    /// Exclude columns from perturbation.
    pub fn exclude<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.excluded.extend(cols.into_iter().map(Into::into));
        self
    }
}

impl Injector for AttributeNoiseInjector {
    fn name(&self) -> &'static str {
        "attr_noise"
    }

    fn describe(&self) -> String {
        format!(
            "attribute noise: N(0,({:.1}·std)^2) on {:.0}% of numeric cells",
            self.sigma_factor,
            self.ratio * 100.0
        )
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if !(0.0..=1.0).contains(&self.ratio) || self.sigma_factor < 0.0 {
            return Err(TableError::InvalidArgument(
                "attr-noise ratio must be in [0,1] and sigma_factor >= 0".to_string(),
            ));
        }
        let mut out = table.clone();
        let names: Vec<String> = table
            .columns()
            .iter()
            .filter(|c| c.dtype().is_numeric() && !self.excluded.iter().any(|e| e == c.name()))
            .map(|c| c.name().to_string())
            .collect();
        for name in names {
            let col = table.column(&name)?;
            let Some(std) = stats::std_dev(col) else {
                continue;
            };
            // A constant column still gets noise relative to |mean| so the
            // defect is observable; fall back to 1.0 for all-zero columns.
            let scale = if std > 0.0 {
                std * self.sigma_factor
            } else {
                stats::mean(col)
                    .map(f64::abs)
                    .filter(|m| *m > 0.0)
                    .unwrap_or(1.0)
                    * self.sigma_factor
            };
            let n = col.len();
            let count = (self.ratio * n as f64).round() as usize;
            let is_int = col.dtype() == openbi_table::DataType::Int;
            for row in sample_indices(n, count, rng) {
                let v = col.get(row)?;
                let Some(x) = v.as_f64() else { continue };
                let noisy = x + gauss(rng) * scale;
                let new = if is_int {
                    Value::Int(noisy.round() as i64)
                } else {
                    Value::Float(noisy)
                };
                out.set(&name, row, new)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![
            Column::from_f64("x", (0..100).map(f64::from).collect::<Vec<f64>>()),
            Column::from_i64("k", (0..100).collect::<Vec<i64>>()),
            Column::from_str_values("s", vec!["a"; 100]),
        ])
        .unwrap()
    }

    #[test]
    fn perturbs_requested_fraction() {
        let inj = AttributeNoiseInjector::new(0.3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        let changed = (0..100)
            .filter(|&i| out.get("x", i).unwrap() != table().get("x", i).unwrap())
            .count();
        // Gaussian noise may round to the same value very rarely; allow
        // tiny slack below the target.
        assert!((28..=30).contains(&changed), "changed {changed}");
    }

    #[test]
    fn integer_columns_stay_integer() {
        let inj = AttributeNoiseInjector::new(1.0, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(
            out.column("k").unwrap().dtype(),
            openbi_table::DataType::Int
        );
    }

    #[test]
    fn string_columns_untouched() {
        let inj = AttributeNoiseInjector::new(1.0, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.column("s").unwrap(), table().column("s").unwrap());
    }

    #[test]
    fn exclusion_respected() {
        let inj = AttributeNoiseInjector::new(1.0, 5.0).exclude(["x"]);
        let mut rng = StdRng::seed_from_u64(4);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.column("x").unwrap(), table().column("x").unwrap());
    }

    #[test]
    fn magnitude_scales_with_sigma_factor() {
        let small = AttributeNoiseInjector::new(1.0, 0.1);
        let large = AttributeNoiseInjector::new(1.0, 2.0);
        let t = table();
        let base: Vec<f64> = (0..100).map(f64::from).collect();
        let diff = |out: &Table| -> f64 {
            (0..100)
                .map(|i| (out.get("x", i).unwrap().as_f64().unwrap() - base[i]).abs())
                .sum::<f64>()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let a = diff(&small.apply(&t, &mut rng).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let b = diff(&large.apply(&t, &mut rng).unwrap());
        assert!(b > a * 5.0, "large noise {b} should dwarf small {a}");
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(AttributeNoiseInjector::new(2.0, 1.0)
            .apply(&table(), &mut rng)
            .is_err());
        assert!(AttributeNoiseInjector::new(0.5, -1.0)
            .apply(&table(), &mut rng)
            .is_err());
    }
}
