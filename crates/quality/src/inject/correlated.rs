//! Redundant correlated-attribute injection — the paper's own §3.1
//! example of a defect that yields "correct but not useful" patterns.

use super::{gauss, Injector};
use openbi_table::{stats, Column, Result, Table, TableError};
use rand::rngs::StdRng;

/// Adds `copies` new columns, each an affine copy of `source` plus
/// Gaussian noise at `noise`×std, named `{source}_corr{i}`.
#[derive(Debug, Clone)]
pub struct CorrelatedInjector {
    /// Source column to copy (must be numeric).
    pub source: String,
    /// Number of correlated copies to append.
    pub copies: usize,
    /// Noise level as a multiple of the source std (0 = exact copies,
    /// which are perfectly correlated).
    pub noise: f64,
}

impl CorrelatedInjector {
    /// Create an injector.
    pub fn new(source: impl Into<String>, copies: usize, noise: f64) -> Self {
        CorrelatedInjector {
            source: source.into(),
            copies,
            noise,
        }
    }
}

impl Injector for CorrelatedInjector {
    fn name(&self) -> &'static str {
        "correlated"
    }

    fn describe(&self) -> String {
        format!(
            "redundancy: {} correlated copies of '{}' (noise {:.2}·std)",
            self.copies, self.source, self.noise
        )
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        let src = table.column(&self.source)?;
        if !src.dtype().is_numeric() {
            return Err(TableError::InvalidArgument(format!(
                "correlated injection source '{}' must be numeric",
                self.source
            )));
        }
        if self.noise < 0.0 {
            return Err(TableError::InvalidArgument(
                "correlated injection noise must be >= 0".to_string(),
            ));
        }
        let std = stats::std_dev(src).unwrap_or(0.0).max(1e-9);
        let values = src.to_f64_vec();
        let mut out = table.clone();
        for k in 0..self.copies {
            // Vary the affine transform per copy so copies are not
            // mutually identical, only strongly correlated.
            let scale = 1.0 + 0.1 * (k as f64 + 1.0);
            let offset = 0.5 * k as f64;
            let copy: Vec<Option<f64>> = values
                .iter()
                .map(|v| v.map(|x| scale * x + offset + gauss(rng) * std * self.noise))
                .collect();
            let mut name = format!("{}_corr{}", self.source, k + 1);
            while out.has_column(&name) {
                name.push('_');
            }
            out.add_column(Column::from_opt_f64(name, copy))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![
            Column::from_f64("x", (0..100).map(f64::from).collect::<Vec<f64>>()),
            Column::from_str_values("class", vec!["a"; 100]),
        ])
        .unwrap()
    }

    #[test]
    fn copies_are_strongly_correlated() {
        let inj = CorrelatedInjector::new("x", 2, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.n_cols(), 4);
        let r1 = stats::pearson(out.column("x").unwrap(), out.column("x_corr1").unwrap()).unwrap();
        let r2 = stats::pearson(out.column("x").unwrap(), out.column("x_corr2").unwrap()).unwrap();
        assert!(r1 > 0.99, "r1 = {r1}");
        assert!(r2 > 0.99, "r2 = {r2}");
    }

    #[test]
    fn noise_weakens_correlation() {
        let inj = CorrelatedInjector::new("x", 1, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = inj.apply(&table(), &mut rng).unwrap();
        let r = stats::pearson(out.column("x").unwrap(), out.column("x_corr1").unwrap()).unwrap();
        assert!(r < 0.95, "r = {r}");
        assert!(r > 0.2, "still correlated, r = {r}");
    }

    #[test]
    fn zero_noise_perfect_correlation() {
        let inj = CorrelatedInjector::new("x", 1, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let out = inj.apply(&table(), &mut rng).unwrap();
        let r = stats::pearson(out.column("x").unwrap(), out.column("x_corr1").unwrap()).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nulls_propagate_to_copies() {
        let t = Table::new(vec![Column::from_opt_f64(
            "x",
            [Some(1.0), None, Some(3.0)],
        )])
        .unwrap();
        let inj = CorrelatedInjector::new("x", 1, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let out = inj.apply(&t, &mut rng).unwrap();
        assert!(out.get("x_corr1", 1).unwrap().is_null());
    }

    #[test]
    fn non_numeric_source_rejected() {
        let inj = CorrelatedInjector::new("class", 1, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(inj.apply(&table(), &mut rng).is_err());
    }

    #[test]
    fn name_collision_resolved() {
        let mut t = table();
        t.add_column(Column::from_f64(
            "x_corr1",
            (0..100).map(f64::from).collect::<Vec<f64>>(),
        ))
        .unwrap();
        let inj = CorrelatedInjector::new("x", 1, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let out = inj.apply(&t, &mut rng).unwrap();
        assert!(out.has_column("x_corr1_"));
    }
}
