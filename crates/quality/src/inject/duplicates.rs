//! Duplicate-record injection: exact copies and near duplicates
//! (perturbed copies, the "fuzzy duplicates" of Ananthakrishna et al.).

use super::{gauss, Injector};
use openbi_table::{stats, Result, Table, TableError, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Appends duplicated rows until they make up `ratio` of the result.
/// With `perturbation > 0`, numeric cells of each copy are nudged by
/// `N(0, (perturbation × column_std)²)`, producing near rather than exact
/// duplicates.
#[derive(Debug, Clone)]
pub struct DuplicateInjector {
    /// Fraction of the *output* rows that are injected duplicates.
    pub ratio: f64,
    /// Relative numeric perturbation of copies (0 = exact copies).
    pub perturbation: f64,
    /// Columns never perturbed (e.g. the class column).
    pub excluded: Vec<String>,
}

impl DuplicateInjector {
    /// Exact-duplicate injector.
    pub fn exact(ratio: f64) -> Self {
        DuplicateInjector {
            ratio,
            perturbation: 0.0,
            excluded: vec![],
        }
    }

    /// Near-duplicate injector with the given numeric perturbation.
    pub fn near(ratio: f64, perturbation: f64) -> Self {
        DuplicateInjector {
            ratio,
            perturbation,
            excluded: vec![],
        }
    }

    /// Exclude columns from perturbation.
    pub fn exclude<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.excluded.extend(cols.into_iter().map(Into::into));
        self
    }
}

impl Injector for DuplicateInjector {
    fn name(&self) -> &'static str {
        "duplicates"
    }

    fn describe(&self) -> String {
        if self.perturbation == 0.0 {
            format!("exact duplicates: {:.0}% of rows", self.ratio * 100.0)
        } else {
            format!(
                "near duplicates: {:.0}% of rows, perturbation {:.2}·std",
                self.ratio * 100.0,
                self.perturbation
            )
        }
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if !(0.0..1.0).contains(&self.ratio) {
            return Err(TableError::InvalidArgument(format!(
                "duplicate ratio {} outside [0,1)",
                self.ratio
            )));
        }
        let n = table.n_rows();
        if n == 0 || self.ratio == 0.0 {
            return Ok(table.clone());
        }
        // d / (n + d) = ratio  =>  d = ratio·n / (1 - ratio)
        let dups = ((self.ratio * n as f64) / (1.0 - self.ratio)).round() as usize;
        let stds: Vec<Option<f64>> = table
            .columns()
            .iter()
            .map(|c| {
                if c.dtype().is_numeric() && !self.excluded.iter().any(|e| e == c.name()) {
                    stats::std_dev(c)
                } else {
                    None
                }
            })
            .collect();
        let mut out = table.clone();
        for _ in 0..dups {
            let src = rng.random_range(0..n);
            let mut row = table.row(src)?;
            if self.perturbation > 0.0 {
                for (ci, value) in row.iter_mut().enumerate() {
                    let Some(std) = stds[ci] else { continue };
                    let scale = std * self.perturbation;
                    match value {
                        Value::Float(f) => *f += gauss(rng) * scale,
                        Value::Int(i) => *i += (gauss(rng) * scale).round() as i64,
                        _ => {}
                    }
                }
            }
            out.push_row(row)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::duplicates::{exact_duplicate_ratio, near_duplicate_ratio};
    use openbi_table::Column;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![
            Column::from_f64("x", (0..50).map(|i| i as f64 * 10.0).collect::<Vec<f64>>()),
            Column::from_str_values(
                "class",
                (0..50)
                    .map(|i| if i % 2 == 0 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn exact_duplicates_reach_target_ratio() {
        let inj = DuplicateInjector::exact(0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.n_rows(), 63); // 50 + round(0.2*50/0.8)=13
        let measured = exact_duplicate_ratio(&out);
        assert!((measured - 13.0 / 63.0).abs() < 0.02, "measured {measured}");
    }

    #[test]
    fn near_duplicates_are_not_exact() {
        let inj = DuplicateInjector::near(0.2, 0.01).exclude(["class"]);
        let mut rng = StdRng::seed_from_u64(2);
        let out = inj.apply(&table(), &mut rng).unwrap();
        // Exact-dup ratio stays ~0 but near-dup ratio is high.
        assert!(exact_duplicate_ratio(&out) < 0.05);
        assert!(near_duplicate_ratio(&out, 0.05) > 0.1);
    }

    #[test]
    fn zero_ratio_identity() {
        let inj = DuplicateInjector::exact(0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(inj.apply(&table(), &mut rng).unwrap(), table());
    }

    #[test]
    fn ratio_one_rejected() {
        let inj = DuplicateInjector::exact(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(inj.apply(&table(), &mut rng).is_err());
    }

    #[test]
    fn class_column_copied_verbatim() {
        let inj = DuplicateInjector::near(0.3, 0.5).exclude(["class"]);
        let mut rng = StdRng::seed_from_u64(4);
        let out = inj.apply(&table(), &mut rng).unwrap();
        for i in 0..out.n_rows() {
            let v = out.get("class", i).unwrap();
            assert!(matches!(v, Value::Str(ref s) if s == "a" || s == "b"));
        }
    }
}
