//! Class-imbalance injection by subsampling minority classes.

use super::Injector;
use openbi_table::{Result, Table, TableError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Downsamples all but the most common class until that class makes up
/// `majority_fraction` of the rows. Row order of the kept rows is
/// preserved.
#[derive(Debug, Clone)]
pub struct ImbalanceInjector {
    /// Target (class) column.
    pub target: String,
    /// Desired fraction of the majority class in the output, in
    /// `[1/k, 1)` for k classes.
    pub majority_fraction: f64,
}

impl ImbalanceInjector {
    /// Create an injector.
    pub fn new(target: impl Into<String>, majority_fraction: f64) -> Self {
        ImbalanceInjector {
            target: target.into(),
            majority_fraction,
        }
    }
}

impl Injector for ImbalanceInjector {
    fn name(&self) -> &'static str {
        "imbalance"
    }

    fn describe(&self) -> String {
        format!(
            "class imbalance: majority class of '{}' raised to {:.0}%",
            self.target,
            self.majority_fraction * 100.0
        )
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if !(0.0..1.0).contains(&self.majority_fraction) {
            return Err(TableError::InvalidArgument(format!(
                "majority fraction {} outside [0,1)",
                self.majority_fraction
            )));
        }
        let col = table.column(&self.target)?;
        // Partition row indices by class label (nulls dropped).
        let mut by_class: Vec<(String, Vec<usize>)> = Vec::new();
        for i in 0..table.n_rows() {
            let v = col.get(i)?;
            if v.is_null() {
                continue;
            }
            let key = v.to_string();
            if let Some(entry) = by_class.iter_mut().find(|(k, _)| *k == key) {
                entry.1.push(i);
            } else {
                by_class.push((key, vec![i]));
            }
        }
        if by_class.len() < 2 {
            return Err(TableError::InvalidArgument(format!(
                "imbalance injection needs >= 2 classes in '{}'",
                self.target
            )));
        }
        by_class.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));
        let majority_count = by_class[0].1.len();
        let current_fraction =
            majority_count as f64 / by_class.iter().map(|(_, v)| v.len()).sum::<usize>() as f64;
        if self.majority_fraction <= current_fraction {
            // Already at least this imbalanced; leave data untouched.
            return Ok(table.clone());
        }
        // Keep all majority rows; scale every minority class by the same
        // factor so that majority / total = majority_fraction.
        let target_minority_total = (majority_count as f64 * (1.0 - self.majority_fraction)
            / self.majority_fraction)
            .round() as usize;
        let minority_total: usize = by_class[1..].iter().map(|(_, v)| v.len()).sum();
        let scale = target_minority_total as f64 / minority_total as f64;
        let mut keep: Vec<usize> = by_class[0].1.clone();
        for (_, rows) in &by_class[1..] {
            let k = ((rows.len() as f64 * scale).round() as usize).clamp(1, rows.len());
            let mut pool = rows.clone();
            pool.shuffle(rng);
            keep.extend(pool.into_iter().take(k));
        }
        keep.sort_unstable();
        table.take(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::balance::balance_report;
    use openbi_table::Column;
    use rand::SeedableRng;

    fn balanced_table() -> Table {
        Table::new(vec![
            Column::from_i64("x", (0..200).collect::<Vec<i64>>()),
            Column::from_str_values(
                "class",
                (0..200)
                    .map(|i| if i % 2 == 0 { "pos" } else { "neg" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn reaches_target_majority_fraction() {
        let inj = ImbalanceInjector::new("class", 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&balanced_table(), &mut rng).unwrap();
        let b = balance_report(&out, "class").unwrap();
        let majority = b.class_counts[0].1 as f64;
        let total: usize = b.class_counts.iter().map(|(_, c)| *c).sum();
        let frac = majority / total as f64;
        assert!((frac - 0.9).abs() < 0.02, "fraction {frac}");
        assert!(b.minority_ratio < 0.15);
    }

    #[test]
    fn already_imbalanced_is_identity() {
        let t = Table::new(vec![Column::from_str_values(
            "class",
            std::iter::repeat_n("a", 90)
                .chain(std::iter::repeat_n("b", 10))
                .collect::<Vec<&str>>(),
        )])
        .unwrap();
        let inj = ImbalanceInjector::new("class", 0.6);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(inj.apply(&t, &mut rng).unwrap(), t);
    }

    #[test]
    fn every_class_keeps_at_least_one_row() {
        let inj = ImbalanceInjector::new("class", 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let out = inj.apply(&balanced_table(), &mut rng).unwrap();
        let b = balance_report(&out, "class").unwrap();
        assert_eq!(b.class_count, 2);
        assert!(b.class_counts.iter().all(|(_, c)| *c >= 1));
    }

    #[test]
    fn multiclass_scaling() {
        let t = Table::new(vec![Column::from_str_values(
            "class",
            (0..300)
                .map(|i| match i % 3 {
                    0 => "a",
                    1 => "b",
                    _ => "c",
                })
                .collect::<Vec<&str>>(),
        )])
        .unwrap();
        let inj = ImbalanceInjector::new("class", 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let out = inj.apply(&t, &mut rng).unwrap();
        let b = balance_report(&out, "class").unwrap();
        assert_eq!(b.class_counts[0].1, 100, "majority kept whole");
        let total: usize = b.class_counts.iter().map(|(_, c)| *c).sum();
        assert!((b.class_counts[0].1 as f64 / total as f64 - 0.8).abs() < 0.03);
    }

    #[test]
    fn single_class_rejected() {
        let t = Table::new(vec![Column::from_str_values("class", ["a", "a"])]).unwrap();
        let inj = ImbalanceInjector::new("class", 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(inj.apply(&t, &mut rng).is_err());
    }
}
