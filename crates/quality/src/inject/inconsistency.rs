//! Representational-inconsistency injection: mangle string value formats
//! (casing, whitespace, date layout) without changing their meaning —
//! the standardization problem of Rahm & Do \[13\].

use super::{sample_indices, Injector};
use openbi_table::{Result, Table, TableError, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Applies a random format mangling to `ratio` of the non-null cells of
/// each string column (except excluded ones).
#[derive(Debug, Clone)]
pub struct InconsistencyInjector {
    /// Fraction of string cells mangled per column.
    pub ratio: f64,
    /// Columns never touched.
    pub excluded: Vec<String>,
}

impl InconsistencyInjector {
    /// Create an injector.
    pub fn new(ratio: f64) -> Self {
        InconsistencyInjector {
            ratio,
            excluded: vec![],
        }
    }

    /// Exclude columns.
    pub fn exclude<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.excluded.extend(cols.into_iter().map(Into::into));
        self
    }
}

/// Reorder an ISO date `YYYY-MM-DD` into `DD/MM/YYYY`; `None` if the
/// value is not an ISO date.
fn reformat_iso_date(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let (y, m, d) = (&s[0..4], &s[5..7], &s[8..10]);
    if y.chars().all(|c| c.is_ascii_digit())
        && m.chars().all(|c| c.is_ascii_digit())
        && d.chars().all(|c| c.is_ascii_digit())
    {
        Some(format!("{d}/{m}/{y}"))
    } else {
        None
    }
}

fn mangle(s: &str, style: u32) -> String {
    if let Some(date) = reformat_iso_date(s) {
        return date;
    }
    match style % 4 {
        0 => s.to_uppercase(),
        1 => s.to_lowercase(),
        2 => format!(" {s}"),
        _ => format!("{s} "),
    }
}

impl Injector for InconsistencyInjector {
    fn name(&self) -> &'static str {
        "inconsistency"
    }

    fn describe(&self) -> String {
        format!(
            "format inconsistency: mangle {:.0}% of string cells",
            self.ratio * 100.0
        )
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if !(0.0..=1.0).contains(&self.ratio) {
            return Err(TableError::InvalidArgument(format!(
                "inconsistency ratio {} outside [0,1]",
                self.ratio
            )));
        }
        let mut out = table.clone();
        let names: Vec<String> = table
            .columns()
            .iter()
            .filter(|c| c.as_str_slice().is_some() && !self.excluded.iter().any(|e| e == c.name()))
            .map(|c| c.name().to_string())
            .collect();
        for name in names {
            let col = table.column(&name)?;
            let n = col.len();
            let count = (self.ratio * n as f64).round() as usize;
            for row in sample_indices(n, count, rng) {
                if let Value::Str(s) = col.get(row)? {
                    let mangled = mangle(&s, rng.random::<u32>());
                    out.set(&name, row, Value::Str(mangled))?;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::consistency::table_consistency;
    use openbi_table::Column;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![
            Column::from_str_values("city", vec!["Madrid"; 40]),
            Column::from_str_values("date", vec!["2024-03-15"; 40]),
            Column::from_f64("x", vec![1.0; 40]),
        ])
        .unwrap()
    }

    #[test]
    fn lowers_measured_consistency() {
        let inj = InconsistencyInjector::new(0.4);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        let before = table_consistency(&table(), &[]);
        let after = table_consistency(&out, &[]);
        assert_eq!(before, 1.0);
        assert!(after < 0.8, "after = {after}");
    }

    #[test]
    fn iso_dates_get_reformatted() {
        let inj = InconsistencyInjector::new(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.get("date", 0).unwrap(), Value::Str("15/03/2024".into()));
    }

    #[test]
    fn values_remain_recoverable() {
        // Mangling must not destroy content: trimming + lowercasing
        // recovers the original for non-date strings.
        let inj = InconsistencyInjector::new(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let out = inj.apply(&table(), &mut rng).unwrap();
        for i in 0..40 {
            let v = out.get("city", i).unwrap().to_string();
            assert_eq!(v.trim().to_lowercase(), "madrid");
        }
    }

    #[test]
    fn numeric_columns_untouched() {
        let inj = InconsistencyInjector::new(1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.column("x").unwrap(), table().column("x").unwrap());
    }

    #[test]
    fn exclusions_respected() {
        let inj = InconsistencyInjector::new(1.0).exclude(["city"]);
        let mut rng = StdRng::seed_from_u64(5);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.column("city").unwrap(), table().column("city").unwrap());
    }

    #[test]
    fn date_reformat_helper() {
        assert_eq!(reformat_iso_date("2024-01-05"), Some("05/01/2024".into()));
        assert_eq!(reformat_iso_date("not-a-date"), None);
        assert_eq!(reformat_iso_date("2024-1-5"), None);
    }
}
