//! Irrelevant-attribute injection: the "high dimensionality" defect the
//! paper singles out for LOD (§1: "a great amount of attributes difficult
//! to be manually handled").

use super::{gauss, Injector};
use openbi_table::{Column, Result, Table, TableError};
use rand::rngs::StdRng;
use rand::Rng;

/// Kinds of irrelevant columns to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrrelevantKind {
    /// Standard-normal numeric noise.
    Gaussian,
    /// Uniform numeric noise in `[0,1)`.
    Uniform,
    /// Random categorical codes from a small alphabet.
    Categorical,
}

/// Appends `count` columns of pure noise, named `irrelevant{i}`.
#[derive(Debug, Clone)]
pub struct IrrelevantInjector {
    /// Number of columns to add.
    pub count: usize,
    /// Kind of noise columns.
    pub kind: IrrelevantKind,
}

impl IrrelevantInjector {
    /// Gaussian irrelevant attributes.
    pub fn gaussian(count: usize) -> Self {
        IrrelevantInjector {
            count,
            kind: IrrelevantKind::Gaussian,
        }
    }

    /// Uniform irrelevant attributes.
    pub fn uniform(count: usize) -> Self {
        IrrelevantInjector {
            count,
            kind: IrrelevantKind::Uniform,
        }
    }

    /// Categorical irrelevant attributes.
    pub fn categorical(count: usize) -> Self {
        IrrelevantInjector {
            count,
            kind: IrrelevantKind::Categorical,
        }
    }
}

impl Injector for IrrelevantInjector {
    fn name(&self) -> &'static str {
        "irrelevant"
    }

    fn describe(&self) -> String {
        format!(
            "dimensionality: {} irrelevant {:?} attributes",
            self.count, self.kind
        )
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if table.n_rows() == 0 {
            return Err(TableError::EmptyTable);
        }
        let mut out = table.clone();
        let n = table.n_rows();
        for k in 0..self.count {
            let mut name = format!("irrelevant{}", k + 1);
            while out.has_column(&name) {
                name.push('_');
            }
            let col = match self.kind {
                IrrelevantKind::Gaussian => {
                    Column::from_f64(name, (0..n).map(|_| gauss(rng)).collect::<Vec<f64>>())
                }
                IrrelevantKind::Uniform => Column::from_f64(
                    name,
                    (0..n).map(|_| rng.random::<f64>()).collect::<Vec<f64>>(),
                ),
                IrrelevantKind::Categorical => {
                    const ALPHABET: [&str; 5] = ["v1", "v2", "v3", "v4", "v5"];
                    Column::from_str_values(
                        name,
                        (0..n)
                            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
                            .collect::<Vec<&str>>(),
                    )
                }
            };
            out.add_column(col)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::stats;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![Column::from_f64(
            "signal",
            (0..200).map(f64::from).collect::<Vec<f64>>(),
        )])
        .unwrap()
    }

    #[test]
    fn adds_requested_columns() {
        let inj = IrrelevantInjector::gaussian(16);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.n_cols(), 17);
        assert!(out.has_column("irrelevant16"));
    }

    #[test]
    fn noise_columns_are_uncorrelated_with_signal() {
        let inj = IrrelevantInjector::gaussian(3);
        let mut rng = StdRng::seed_from_u64(2);
        let out = inj.apply(&table(), &mut rng).unwrap();
        for k in 1..=3 {
            let r = stats::pearson(
                out.column("signal").unwrap(),
                out.column(&format!("irrelevant{k}")).unwrap(),
            )
            .unwrap();
            assert!(r.abs() < 0.2, "|r| = {}", r.abs());
        }
    }

    #[test]
    fn categorical_kind_produces_strings() {
        let inj = IrrelevantInjector::categorical(1);
        let mut rng = StdRng::seed_from_u64(3);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(
            out.column("irrelevant1").unwrap().dtype(),
            openbi_table::DataType::Str
        );
    }

    #[test]
    fn uniform_kind_in_unit_interval() {
        let inj = IrrelevantInjector::uniform(1);
        let mut rng = StdRng::seed_from_u64(4);
        let out = inj.apply(&table(), &mut rng).unwrap();
        for v in out
            .column("irrelevant1")
            .unwrap()
            .to_f64_vec()
            .into_iter()
            .flatten()
        {
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn empty_table_rejected() {
        let inj = IrrelevantInjector::gaussian(1);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(inj.apply(&Table::empty(), &mut rng).is_err());
    }
}
