//! Class-label noise: flip a fraction of target labels to a different
//! class.

use super::{sample_indices, Injector};
use openbi_table::{Result, Table, TableError, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Flips `ratio` of the target column's labels to a uniformly chosen
/// *different* observed class.
#[derive(Debug, Clone)]
pub struct LabelNoiseInjector {
    /// Target column whose labels are flipped.
    pub target: String,
    /// Fraction of rows affected.
    pub ratio: f64,
}

impl LabelNoiseInjector {
    /// Create an injector.
    pub fn new(target: impl Into<String>, ratio: f64) -> Self {
        LabelNoiseInjector {
            target: target.into(),
            ratio,
        }
    }
}

impl Injector for LabelNoiseInjector {
    fn name(&self) -> &'static str {
        "label_noise"
    }

    fn describe(&self) -> String {
        format!(
            "class-label noise: flip {:.0}% of '{}' labels",
            self.ratio * 100.0,
            self.target
        )
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if !(0.0..=1.0).contains(&self.ratio) {
            return Err(TableError::InvalidArgument(format!(
                "label-noise ratio {} outside [0,1]",
                self.ratio
            )));
        }
        let col = table.column(&self.target)?;
        let classes = col.distinct();
        if classes.len() < 2 {
            return Err(TableError::InvalidArgument(format!(
                "label noise needs at least 2 classes in '{}', found {}",
                self.target,
                classes.len()
            )));
        }
        let mut out = table.clone();
        let n = table.n_rows();
        let target_count = (self.ratio * n as f64).round() as usize;
        for row in sample_indices(n, target_count, rng) {
            let current = col.get(row)?;
            if current.is_null() {
                continue;
            }
            // Choose uniformly among the other classes.
            let others: Vec<&Value> = classes.iter().filter(|c| **c != current).collect();
            let pick = others[rng.random_range(0..others.len())].clone();
            out.set(&self.target, row, pick)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![
            Column::from_i64("x", (0..60).collect::<Vec<i64>>()),
            Column::from_str_values(
                "class",
                (0..60)
                    .map(|i| match i % 3 {
                        0 => "a",
                        1 => "b",
                        _ => "c",
                    })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn flips_exactly_the_requested_fraction() {
        let inj = LabelNoiseInjector::new("class", 0.25);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        let flipped = (0..60)
            .filter(|&i| out.get("class", i).unwrap() != table().get("class", i).unwrap())
            .count();
        assert_eq!(flipped, 15);
    }

    #[test]
    fn flipped_labels_are_valid_classes() {
        let inj = LabelNoiseInjector::new("class", 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let out = inj.apply(&table(), &mut rng).unwrap();
        for i in 0..60 {
            let v = out.get("class", i).unwrap();
            assert!(matches!(
                v,
                Value::Str(ref s) if ["a", "b", "c"].contains(&s.as_str())
            ));
        }
    }

    #[test]
    fn single_class_rejected() {
        let t = Table::new(vec![Column::from_str_values("class", ["a", "a"])]).unwrap();
        let inj = LabelNoiseInjector::new("class", 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(inj.apply(&t, &mut rng).is_err());
    }

    #[test]
    fn missing_target_rejected() {
        let inj = LabelNoiseInjector::new("nope", 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(inj.apply(&table(), &mut rng).is_err());
    }

    #[test]
    fn features_untouched() {
        let inj = LabelNoiseInjector::new("class", 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let out = inj.apply(&table(), &mut rng).unwrap();
        assert_eq!(out.column("x").unwrap(), table().column("x").unwrap());
    }
}
