//! Missing-value injection: MCAR and MAR mechanisms.

use super::{sample_indices, Injector};
use openbi_table::{Result, Table, TableError, Value};
use rand::rngs::StdRng;

/// How missingness depends on the data.
#[derive(Debug, Clone, PartialEq)]
pub enum MissingMechanism {
    /// Missing Completely At Random: every cell equally likely.
    Mcar,
    /// Missing At Random: rows in the upper half of `driver`'s values are
    /// `skew` times as likely to lose cells as the rest. The driver
    /// column itself never loses values.
    Mar {
        /// Numeric column whose value drives missingness.
        driver: String,
        /// Likelihood multiplier for high-driver rows (≥ 1).
        skew: f64,
    },
}

/// Injects nulls into feature cells at a target ratio.
#[derive(Debug, Clone)]
pub struct MissingInjector {
    /// Target fraction of affected cells among eligible cells.
    pub ratio: f64,
    /// The mechanism.
    pub mechanism: MissingMechanism,
    /// Columns never nulled (targets, identifiers).
    pub excluded: Vec<String>,
}

impl MissingInjector {
    /// MCAR injector at `ratio`.
    pub fn mcar(ratio: f64) -> Self {
        MissingInjector {
            ratio,
            mechanism: MissingMechanism::Mcar,
            excluded: vec![],
        }
    }

    /// MAR injector at `ratio`, driven by `driver` with skew 3×.
    pub fn mar(ratio: f64, driver: impl Into<String>) -> Self {
        MissingInjector {
            ratio,
            mechanism: MissingMechanism::Mar {
                driver: driver.into(),
                skew: 3.0,
            },
            excluded: vec![],
        }
    }

    /// Exclude columns from injection.
    pub fn exclude<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.excluded.extend(cols.into_iter().map(Into::into));
        self
    }
}

impl Injector for MissingInjector {
    fn name(&self) -> &'static str {
        "missing"
    }

    fn describe(&self) -> String {
        match &self.mechanism {
            MissingMechanism::Mcar => format!("MCAR missing values at ratio {:.2}", self.ratio),
            MissingMechanism::Mar { driver, skew } => format!(
                "MAR missing values at ratio {:.2} driven by '{driver}' (skew {skew:.1}x)",
                self.ratio
            ),
        }
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if !(0.0..=1.0).contains(&self.ratio) {
            return Err(TableError::InvalidArgument(format!(
                "missing ratio {} outside [0,1]",
                self.ratio
            )));
        }
        let mut out = table.clone();
        let mut excluded: Vec<&str> = self.excluded.iter().map(String::as_str).collect();
        if let MissingMechanism::Mar { driver, .. } = &self.mechanism {
            table.column(driver)?; // must exist
            excluded.push(driver);
        }
        let eligible: Vec<String> = table
            .column_names()
            .into_iter()
            .filter(|n| !excluded.contains(n))
            .map(str::to_string)
            .collect();
        let n_rows = table.n_rows();
        if eligible.is_empty() || n_rows == 0 {
            return Ok(out);
        }
        // Enumerate eligible cells as (col_idx, row) pairs; weight rows
        // under MAR by replicating high-driver rows `skew` times in the
        // sampling pool (then dedup when applying).
        let total_cells = eligible.len() * n_rows;
        let target = (self.ratio * total_cells as f64).round() as usize;
        match &self.mechanism {
            MissingMechanism::Mcar => {
                let picks = sample_indices(total_cells, target, rng);
                for p in picks {
                    let col = &eligible[p / n_rows];
                    let row = p % n_rows;
                    out.set(col, row, Value::Null)?;
                }
            }
            MissingMechanism::Mar { driver, skew } => {
                let dvals = table.column(driver)?.to_f64_vec();
                let non_null: Vec<f64> = dvals.iter().flatten().copied().collect();
                let mut sorted = non_null.clone();
                sorted.sort_by(f64::total_cmp);
                let median = if sorted.is_empty() {
                    0.0
                } else {
                    sorted[sorted.len() / 2]
                };
                let weight = |row: usize| -> usize {
                    match dvals[row] {
                        Some(v) if v >= median => (*skew).round().max(1.0) as usize,
                        _ => 1,
                    }
                };
                // Weighted pool of cell indices.
                let mut pool: Vec<(usize, usize)> = Vec::new();
                for (ci, _) in eligible.iter().enumerate() {
                    for row in 0..n_rows {
                        for _ in 0..weight(row) {
                            pool.push((ci, row));
                        }
                    }
                }
                let mut nulled = std::collections::HashSet::new();
                let picks = sample_indices(pool.len(), pool.len(), rng);
                for p in picks {
                    if nulled.len() >= target {
                        break;
                    }
                    let (ci, row) = pool[p];
                    if nulled.insert((ci, row)) {
                        out.set(&eligible[ci], row, Value::Null)?;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![
            openbi_table::Column::from_f64("a", (0..100).map(f64::from).collect::<Vec<f64>>()),
            openbi_table::Column::from_f64(
                "b",
                (0..100).map(|i| f64::from(i * 2)).collect::<Vec<f64>>(),
            ),
            openbi_table::Column::from_str_values(
                "class",
                (0..100)
                    .map(|i| if i % 2 == 0 { "x" } else { "y" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn mcar_hits_target_ratio() {
        let inj = MissingInjector::mcar(0.25).exclude(["class"]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        let nulls = out.total_null_count();
        assert_eq!(nulls, 50, "25% of 200 eligible cells");
        assert_eq!(out.column("class").unwrap().null_count(), 0);
    }

    #[test]
    fn zero_ratio_is_identity() {
        let inj = MissingInjector::mcar(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(inj.apply(&table(), &mut rng).unwrap(), table());
    }

    #[test]
    fn invalid_ratio_rejected() {
        let inj = MissingInjector::mcar(1.5);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(inj.apply(&table(), &mut rng).is_err());
    }

    #[test]
    fn mar_driver_must_exist() {
        let inj = MissingInjector::mar(0.1, "nope");
        let mut rng = StdRng::seed_from_u64(1);
        assert!(inj.apply(&table(), &mut rng).is_err());
    }

    #[test]
    fn mar_skews_missingness_toward_high_driver_rows() {
        let inj = MissingInjector::mar(0.3, "a").exclude(["class"]);
        let mut rng = StdRng::seed_from_u64(3);
        let out = inj.apply(&table(), &mut rng).unwrap();
        // Driver column 'a' itself keeps all values.
        assert_eq!(out.column("a").unwrap().null_count(), 0);
        // Count nulls in 'b' for rows with a >= 50 vs below.
        let b = out.column("b").unwrap();
        let mut high = 0;
        let mut low = 0;
        for i in 0..100 {
            if b.get(i).unwrap().is_null() {
                if i >= 50 {
                    high += 1;
                } else {
                    low += 1;
                }
            }
        }
        assert!(
            high > low,
            "high-driver rows should lose more cells ({high} vs {low})"
        );
    }

    #[test]
    fn describe_mentions_mechanism() {
        assert!(MissingInjector::mcar(0.1).describe().contains("MCAR"));
        assert!(MissingInjector::mar(0.1, "d").describe().contains("MAR"));
    }
}
