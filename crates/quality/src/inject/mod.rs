//! Controlled injection of data-quality problems (paper §3.1, step 2:
//! "From this initial dataset we will introduce some data quality
//! problems in a controlled manner").
//!
//! Every injector is deterministic given a seeded RNG, takes a clean
//! table and returns a degraded copy. [`Degradation`] composes several
//! injectors for the paper's phase-2 "mixed" experiments.

pub mod attr_noise;
pub mod correlated;
pub mod duplicates;
pub mod imbalance;
pub mod inconsistency;
pub mod irrelevant;
pub mod label_noise;
pub mod missing;
pub mod outliers;

pub use attr_noise::AttributeNoiseInjector;
pub use correlated::CorrelatedInjector;
pub use duplicates::DuplicateInjector;
pub use imbalance::ImbalanceInjector;
pub use inconsistency::InconsistencyInjector;
pub use irrelevant::IrrelevantInjector;
pub use label_noise::LabelNoiseInjector;
pub use missing::{MissingInjector, MissingMechanism};
pub use outliers::OutlierInjector;

use openbi_table::{Result, Table};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A controlled data-quality defect generator.
///
/// `Send + Sync` so composed [`Degradation`]s can migrate between the
/// worker threads of the cell-level experiment executor; injectors are
/// pure parameter records, so every implementation satisfies the bound
/// for free. The [`BoxCloneInjector`] supertrait (blanket-implemented
/// for every `Clone` injector) additionally lets a boxed injector be
/// cloned, so a `Degradation` can be copied onto a detachable thread
/// when the executor enforces per-cell deadlines.
pub trait Injector: std::fmt::Debug + Send + Sync + BoxCloneInjector {
    /// Stable identifier, e.g. `"missing"`.
    fn name(&self) -> &'static str;
    /// Human-readable description with parameters.
    fn describe(&self) -> String;
    /// Apply the defect to a copy of `table`.
    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table>;
}

/// Object-safe clone support for boxed injectors. Implemented for free
/// for every `Clone` injector; implementations never need to write it
/// by hand.
pub trait BoxCloneInjector {
    /// Clone `self` into a fresh box.
    fn box_clone(&self) -> Box<dyn Injector>;
}

impl<T: Injector + Clone + 'static> BoxCloneInjector for T {
    fn box_clone(&self) -> Box<dyn Injector> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Injector> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Standard normal deviate via Box–Muller (keeps `rand_distr` out of the
/// dependency set).
pub(crate) fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Pick `count` distinct indices from `0..len` (partial Fisher–Yates).
pub(crate) fn sample_indices(len: usize, count: usize, rng: &mut StdRng) -> Vec<usize> {
    let count = count.min(len);
    let mut idx: Vec<usize> = (0..len).collect();
    for i in 0..count {
        let j = i + rng.random_range(0..len - i);
        idx.swap(i, j);
    }
    idx.truncate(count);
    idx
}

/// A named, ordered composition of injectors applied with one seed —
/// the unit of the phase-2 "mixed data quality criteria" experiments.
#[derive(Debug, Default, Clone)]
pub struct Degradation {
    injectors: Vec<Box<dyn Injector>>,
}

impl Degradation {
    /// Start an empty (identity) degradation.
    pub fn new() -> Self {
        Degradation::default()
    }

    /// Append an injector.
    pub fn then(mut self, injector: impl Injector + 'static) -> Self {
        self.injectors.push(Box::new(injector));
        self
    }

    /// Append all injectors of another degradation (phase-2 mixing).
    pub fn extend(&mut self, other: Degradation) {
        self.injectors.extend(other.injectors);
    }

    /// Number of composed injectors.
    pub fn len(&self) -> usize {
        self.injectors.len()
    }

    /// True iff this is the identity degradation.
    pub fn is_empty(&self) -> bool {
        self.injectors.is_empty()
    }

    /// Apply all injectors in order, reproducibly from `seed`.
    pub fn apply(&self, table: &Table, seed: u64) -> Result<Table> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = table.clone();
        for inj in &self.injectors {
            out = inj.apply(&out, &mut rng)?;
        }
        Ok(out)
    }

    /// Descriptions of the composed injectors, in order.
    pub fn describe(&self) -> Vec<String> {
        self.injectors.iter().map(|i| i.describe()).collect()
    }

    /// Names of the composed injectors, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.injectors.iter().map(|i| i.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn table() -> Table {
        Table::new(vec![
            Column::from_f64("x", (0..40).map(|i| i as f64).collect::<Vec<f64>>()),
            Column::from_str_values(
                "class",
                (0..40)
                    .map(|i| if i % 2 == 0 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn gauss_has_roughly_standard_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let idx = sample_indices(10, 6, &mut rng);
        assert_eq!(idx.len(), 6);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(sorted.iter().all(|&i| i < 10));
        assert_eq!(sample_indices(3, 10, &mut rng).len(), 3);
    }

    #[test]
    fn degradation_composes_and_is_deterministic() {
        let d = Degradation::new()
            .then(MissingInjector::mcar(0.2).exclude(["class"]))
            .then(LabelNoiseInjector::new("class", 0.1));
        assert_eq!(d.len(), 2);
        assert_eq!(d.names(), vec!["missing", "label_noise"]);
        let t = table();
        let a = d.apply(&t, 7).unwrap();
        let b = d.apply(&t, 7).unwrap();
        assert_eq!(a, b);
        let c = d.apply(&t, 8).unwrap();
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.column("x").unwrap().null_count() > 0);
    }

    #[test]
    fn cloned_degradation_behaves_identically() {
        let d = Degradation::new()
            .then(MissingInjector::mcar(0.2).exclude(["class"]))
            .then(LabelNoiseInjector::new("class", 0.1));
        let cloned = d.clone();
        assert_eq!(cloned.len(), d.len());
        assert_eq!(cloned.names(), d.names());
        assert_eq!(cloned.describe(), d.describe());
        let t = table();
        assert_eq!(cloned.apply(&t, 7).unwrap(), d.apply(&t, 7).unwrap());
    }

    #[test]
    fn empty_degradation_is_identity() {
        let d = Degradation::new();
        assert!(d.is_empty());
        let t = table();
        assert_eq!(d.apply(&t, 0).unwrap(), t);
    }
}
