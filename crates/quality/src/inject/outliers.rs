//! Outlier injection: replace a fraction of numeric cells with extreme
//! values.

use super::{sample_indices, Injector};
use openbi_table::{stats, Result, Table, TableError, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Replaces `ratio` of each numeric column's cells with values placed
/// `magnitude` standard deviations away from the mean (random sign).
#[derive(Debug, Clone)]
pub struct OutlierInjector {
    /// Fraction of cells per numeric column turned into outliers.
    pub ratio: f64,
    /// Distance from the mean, in standard deviations (should be > 3 to
    /// clear the usual fences).
    pub magnitude: f64,
    /// Columns never touched.
    pub excluded: Vec<String>,
}

impl OutlierInjector {
    /// Create an injector.
    pub fn new(ratio: f64, magnitude: f64) -> Self {
        OutlierInjector {
            ratio,
            magnitude,
            excluded: vec![],
        }
    }

    /// Exclude columns.
    pub fn exclude<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.excluded.extend(cols.into_iter().map(Into::into));
        self
    }
}

impl Injector for OutlierInjector {
    fn name(&self) -> &'static str {
        "outliers"
    }

    fn describe(&self) -> String {
        format!(
            "outliers: {:.0}% of numeric cells moved {:.1} std from the mean",
            self.ratio * 100.0,
            self.magnitude
        )
    }

    fn apply(&self, table: &Table, rng: &mut StdRng) -> Result<Table> {
        if !(0.0..=1.0).contains(&self.ratio) || self.magnitude <= 0.0 {
            return Err(TableError::InvalidArgument(
                "outlier ratio must be in [0,1] and magnitude > 0".to_string(),
            ));
        }
        let mut out = table.clone();
        let names: Vec<String> = table
            .columns()
            .iter()
            .filter(|c| c.dtype().is_numeric() && !self.excluded.iter().any(|e| e == c.name()))
            .map(|c| c.name().to_string())
            .collect();
        for name in names {
            let col = table.column(&name)?;
            let (Some(mean), Some(std)) = (stats::mean(col), stats::std_dev(col)) else {
                continue;
            };
            let std = if std > 0.0 { std } else { mean.abs().max(1.0) };
            let n = col.len();
            let count = (self.ratio * n as f64).round() as usize;
            let is_int = col.dtype() == openbi_table::DataType::Int;
            for row in sample_indices(n, count, rng) {
                if col.get(row)?.is_null() {
                    continue;
                }
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                // Jitter the distance a little so injected outliers are
                // not a single repeated value.
                let dist = self.magnitude * (1.0 + rng.random::<f64>() * 0.5);
                let v = mean + sign * dist * std;
                let new = if is_int {
                    Value::Int(v.round() as i64)
                } else {
                    Value::Float(v)
                };
                out.set(&name, row, new)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::outliers::outlier_ratio;
    use openbi_table::Column;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(vec![
            Column::from_f64("x", (0..200).map(|i| (i % 20) as f64).collect::<Vec<f64>>()),
            Column::from_str_values("class", vec!["a"; 200]),
        ])
        .unwrap()
    }

    #[test]
    fn injected_outliers_are_measured() {
        let inj = OutlierInjector::new(0.05, 6.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = inj.apply(&table(), &mut rng).unwrap();
        let before = outlier_ratio(&table(), &[]);
        let after = outlier_ratio(&out, &[]);
        assert_eq!(before, 0.0);
        assert!(after >= 0.04, "after = {after}");
    }

    #[test]
    fn zero_ratio_identity() {
        let inj = OutlierInjector::new(0.0, 5.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(inj.apply(&table(), &mut rng).unwrap(), table());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(OutlierInjector::new(-0.1, 5.0)
            .apply(&table(), &mut rng)
            .is_err());
        assert!(OutlierInjector::new(0.1, 0.0)
            .apply(&table(), &mut rng)
            .is_err());
    }

    #[test]
    fn excluded_columns_untouched() {
        let t = Table::new(vec![
            Column::from_f64("x", (0..50).map(f64::from).collect::<Vec<f64>>()),
            Column::from_f64("keep", (0..50).map(f64::from).collect::<Vec<f64>>()),
        ])
        .unwrap();
        let inj = OutlierInjector::new(0.5, 8.0).exclude(["keep"]);
        let mut rng = StdRng::seed_from_u64(4);
        let out = inj.apply(&t, &mut rng).unwrap();
        assert_eq!(out.column("keep").unwrap(), t.column("keep").unwrap());
        assert_ne!(out.column("x").unwrap(), t.column("x").unwrap());
    }
}
