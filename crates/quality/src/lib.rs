//! # openbi-quality
//!
//! Data-quality criteria for OpenBI: **measurement** of every criterion
//! the paper's experiments vary (completeness, duplicates, correlation /
//! redundancy, class balance, outliers, label & attribute noise,
//! representational consistency, dimensionality) and **controlled
//! injection** of the corresponding defects into clean datasets —
//! the paper's §3.1 experimental protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dedup;
pub mod inject;
pub mod measure;
pub mod profile;
pub mod reference;
pub mod report;

pub use cache::{measure_profile_cached, ProfileCache};
pub use dedup::{find_duplicate_clusters, merge_duplicates, string_similarity, LinkageConfig};
pub use inject::{
    AttributeNoiseInjector, BoxCloneInjector, CorrelatedInjector, Degradation, DuplicateInjector,
    ImbalanceInjector, InconsistencyInjector, Injector, IrrelevantInjector, LabelNoiseInjector,
    MissingInjector, MissingMechanism, OutlierInjector,
};
pub use measure::{measure_profile, MeasureOptions, DEFAULT_NOISE_SEED};
pub use profile::{QualityProfile, PROFILE_DIMENSIONS};
pub use report::render_profile;
