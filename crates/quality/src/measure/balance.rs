//! Class balance measurement for a designated target column.

use openbi_table::{stats, Table};

/// Class-distribution summary of a target column.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Distinct class count.
    pub class_count: usize,
    /// Normalized entropy in `[0,1]` (1 = uniform, 0 = single class).
    pub normalized_entropy: f64,
    /// Rarest class frequency / most common class frequency.
    pub minority_ratio: f64,
    /// `(class label, count)` pairs, most common first.
    pub class_counts: Vec<(String, usize)>,
}

/// Measure class balance of `target`. Errors if the column is missing.
pub fn balance_report(table: &Table, target: &str) -> openbi_table::Result<BalanceReport> {
    let col = table.column(target)?;
    let mut counts: Vec<(String, usize)> = stats::value_counts(col).into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let class_count = counts.len();
    let normalized_entropy = if class_count <= 1 {
        if class_count == 1 {
            0.0
        } else {
            1.0
        }
    } else {
        stats::entropy(col) / (class_count as f64).log2()
    };
    let minority_ratio = match (counts.last(), counts.first()) {
        (Some((_, min)), Some((_, max))) if *max > 0 => *min as f64 / *max as f64,
        _ => 1.0,
    };
    Ok(BalanceReport {
        class_count,
        normalized_entropy,
        minority_ratio,
        class_counts: counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    #[test]
    fn balanced_binary() {
        let t = Table::new(vec![Column::from_str_values("y", ["a", "b", "a", "b"])]).unwrap();
        let r = balance_report(&t, "y").unwrap();
        assert_eq!(r.class_count, 2);
        assert!((r.normalized_entropy - 1.0).abs() < 1e-12);
        assert_eq!(r.minority_ratio, 1.0);
    }

    #[test]
    fn imbalanced_binary() {
        let labels: Vec<&str> = std::iter::repeat_n("a", 9).chain(["b"]).collect();
        let t = Table::new(vec![Column::from_str_values("y", labels)]).unwrap();
        let r = balance_report(&t, "y").unwrap();
        assert!((r.minority_ratio - 1.0 / 9.0).abs() < 1e-12);
        assert!(r.normalized_entropy < 0.6);
        assert_eq!(r.class_counts[0], ("a".to_string(), 9));
    }

    #[test]
    fn single_class_entropy_zero() {
        let t = Table::new(vec![Column::from_str_values("y", ["a", "a"])]).unwrap();
        let r = balance_report(&t, "y").unwrap();
        assert_eq!(r.normalized_entropy, 0.0);
        assert_eq!(r.class_count, 1);
    }

    #[test]
    fn missing_column_errors() {
        let t = Table::new(vec![Column::from_i64("x", [1])]).unwrap();
        assert!(balance_report(&t, "y").is_err());
    }
}
