//! Class balance measurement for a designated target column.
//!
//! Counting is columnar: string targets (the common case) are counted by
//! `&str` borrow and only the distinct labels are cloned, instead of
//! rendering every cell to a fresh `String` as `stats::value_counts`
//! does. Entropy is summed in sorted-key order — the same deterministic
//! order as the fixed `stats::entropy` — and the normalized value is
//! clamped to 1.0 (uniform distributions can overshoot by an ulp).

use openbi_table::{stats, Table};
use std::collections::HashMap;

/// Class-distribution summary of a target column.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Distinct class count.
    pub class_count: usize,
    /// Normalized entropy in `[0,1]` (1 = uniform, 0 = single class).
    pub normalized_entropy: f64,
    /// Rarest class frequency / most common class frequency.
    pub minority_ratio: f64,
    /// `(class label, count)` pairs, most common first.
    pub class_counts: Vec<(String, usize)>,
}

/// Count distinct non-null rendered values. String columns take a
/// borrow-first fast path; other dtypes go through `stats::value_counts`
/// (identical counts — `Value::to_string` rendering either way).
fn class_counts(table: &Table, target: &str) -> openbi_table::Result<Vec<(String, usize)>> {
    let col = table.column(target)?;
    if let Some(values) = col.as_str_slice() {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for v in values.iter().flatten() {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
        Ok(counts
            .into_iter()
            .map(|(k, c)| (k.to_string(), c))
            .collect())
    } else {
        Ok(stats::value_counts(col).into_iter().collect())
    }
}

/// Measure class balance of `target`. Errors if the column is missing.
pub fn balance_report(table: &Table, target: &str) -> openbi_table::Result<BalanceReport> {
    let mut counts = class_counts(table, target)?;
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let class_count = counts.len();
    let normalized_entropy = if class_count <= 1 {
        if class_count == 1 {
            0.0
        } else {
            1.0
        }
    } else {
        // Same summation as `stats::entropy`: per-class terms added in
        // lexicographic key order for bit-determinism.
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        let mut by_key: Vec<(&str, usize)> = counts.iter().map(|(k, c)| (k.as_str(), *c)).collect();
        by_key.sort_by(|a, b| a.0.cmp(b.0));
        let entropy: f64 = by_key
            .iter()
            .map(|&(_, c)| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        (entropy / (class_count as f64).log2()).min(1.0)
    };
    let minority_ratio = match (counts.last(), counts.first()) {
        (Some((_, min)), Some((_, max))) if *max > 0 => *min as f64 / *max as f64,
        _ => 1.0,
    };
    Ok(BalanceReport {
        class_count,
        normalized_entropy,
        minority_ratio,
        class_counts: counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    #[test]
    fn balanced_binary() {
        let t = Table::new(vec![Column::from_str_values("y", ["a", "b", "a", "b"])]).unwrap();
        let r = balance_report(&t, "y").unwrap();
        assert_eq!(r.class_count, 2);
        assert!((r.normalized_entropy - 1.0).abs() < 1e-12);
        assert_eq!(r.minority_ratio, 1.0);
    }

    #[test]
    fn imbalanced_binary() {
        let labels: Vec<&str> = std::iter::repeat_n("a", 9).chain(["b"]).collect();
        let t = Table::new(vec![Column::from_str_values("y", labels)]).unwrap();
        let r = balance_report(&t, "y").unwrap();
        assert!((r.minority_ratio - 1.0 / 9.0).abs() < 1e-12);
        assert!(r.normalized_entropy < 0.6);
        assert_eq!(r.class_counts[0], ("a".to_string(), 9));
    }

    #[test]
    fn single_class_entropy_zero() {
        let t = Table::new(vec![Column::from_str_values("y", ["a", "a"])]).unwrap();
        let r = balance_report(&t, "y").unwrap();
        assert_eq!(r.normalized_entropy, 0.0);
        assert_eq!(r.class_count, 1);
    }

    #[test]
    fn missing_column_errors() {
        let t = Table::new(vec![Column::from_i64("x", [1])]).unwrap();
        assert!(balance_report(&t, "y").is_err());
    }

    #[test]
    fn uniform_entropy_never_exceeds_one() {
        // Three equiprobable classes: H/log2(3) can overshoot 1 by an ulp
        // without the clamp.
        let t = Table::new(vec![Column::from_str_values(
            "y",
            ["a", "b", "c", "a", "b", "c"],
        )])
        .unwrap();
        let r = balance_report(&t, "y").unwrap();
        assert!(r.normalized_entropy <= 1.0);
        assert!((r.normalized_entropy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_target_matches_reference() {
        let t = Table::new(vec![Column::from_i64("y", [1, 2, 2, 3, 3, 3])]).unwrap();
        let live = balance_report(&t, "y").unwrap();
        let frozen = crate::reference::balance::balance_report(&t, "y").unwrap();
        assert_eq!(live.class_counts, frozen.class_counts);
        assert_eq!(
            live.normalized_entropy.to_bits(),
            frozen.normalized_entropy.to_bits()
        );
        assert_eq!(
            live.minority_ratio.to_bits(),
            frozen.minority_ratio.to_bits()
        );
    }
}
