//! Completeness: the fraction of non-null cells.

use openbi_table::Table;

/// Overall completeness of a table: non-null cells / total cells.
/// An empty table is trivially complete (1.0).
pub fn completeness(table: &Table) -> f64 {
    let total = table.n_rows() * table.n_cols();
    if total == 0 {
        return 1.0;
    }
    1.0 - table.total_null_count() as f64 / total as f64
}

/// Per-column completeness, as `(column, non-null fraction)` pairs.
pub fn column_completeness(table: &Table) -> Vec<(String, f64)> {
    table
        .columns()
        .iter()
        .map(|c| {
            let frac = if c.is_empty() {
                1.0
            } else {
                1.0 - c.null_count() as f64 / c.len() as f64
            };
            (c.name().to_string(), frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    #[test]
    fn full_table_is_complete() {
        let t = Table::new(vec![Column::from_i64("a", [1, 2])]).unwrap();
        assert_eq!(completeness(&t), 1.0);
    }

    #[test]
    fn counts_nulls_across_columns() {
        let t = Table::new(vec![
            Column::from_opt_i64("a", [Some(1), None]),
            Column::from_opt_f64("b", [None, None]),
        ])
        .unwrap();
        assert!((completeness(&t) - 0.25).abs() < 1e-12);
        let per = column_completeness(&t);
        assert_eq!(per[0], ("a".to_string(), 0.5));
        assert_eq!(per[1], ("b".to_string(), 0.0));
    }

    #[test]
    fn empty_table_is_complete() {
        assert_eq!(completeness(&Table::empty()), 1.0);
    }
}
