//! Representational consistency of string columns.
//!
//! Cleaning literature (Rahm & Do \[13\]) highlights heterogeneous value
//! representation — mixed date formats, inconsistent casing, stray
//! whitespace — as a core quality problem. We measure it structurally:
//! each string is reduced to a *format signature* (runs of character
//! classes), and a column's consistency is the share of its dominant
//! signature.
//!
//! The signature is built in one pass with a last-class state machine
//! writing directly into the output `String` (the reference materialized
//! an intermediate `Vec` of runs first); output is identical.

use openbi_table::{Column, Table};
use std::collections::HashMap;

/// Character classes a signature distinguishes.
#[derive(PartialEq, Clone, Copy)]
enum Class {
    Lower,
    Upper,
    Capitalized,
    Digit,
    Space,
    Other(char),
}

impl Class {
    fn glyph(self) -> char {
        match self {
            Class::Lower => 'a',
            Class::Upper => 'A',
            Class::Capitalized => 'C',
            Class::Digit => '9',
            Class::Space => ' ',
            Class::Other(c) => c,
        }
    }
}

/// Reduce a string to a format signature: `a` = lowercase run, `A` =
/// uppercase run, `Aa` = capitalized run, `9` = digit run, other chars
/// verbatim, whitespace normalized to a single space (leading/trailing
/// whitespace is kept — it is an inconsistency signal).
pub fn format_signature(s: &str) -> String {
    let mut out = String::new();
    let mut last: Option<Class> = None;
    for c in s.chars() {
        let class = if c.is_ascii_digit() {
            Class::Digit
        } else if c.is_lowercase() {
            Class::Lower
        } else if c.is_uppercase() {
            Class::Upper
        } else if c.is_whitespace() {
            Class::Space
        } else {
            Class::Other(c)
        };
        match (last, class) {
            // An uppercase letter followed by lowercase = capitalized word.
            (Some(Class::Upper), Class::Lower) => {
                out.pop();
                out.push(Class::Capitalized.glyph());
                last = Some(Class::Capitalized);
            }
            (Some(Class::Capitalized), Class::Lower)
            | (Some(Class::Lower), Class::Lower)
            | (Some(Class::Upper), Class::Upper)
            | (Some(Class::Digit), Class::Digit)
            | (Some(Class::Space), Class::Space) => {}
            (_, c) => {
                out.push(c.glyph());
                last = Some(c);
            }
        }
    }
    out
}

/// Share of the dominant format signature among non-null values of a
/// string column; 1.0 for empty or non-string columns.
pub fn column_consistency(column: &Column) -> f64 {
    let Some(values) = column.as_str_slice() else {
        return 1.0;
    };
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut total = 0usize;
    for v in values.iter().flatten() {
        *counts.entry(format_signature(v)).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return 1.0;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / total as f64
}

/// Mean consistency over string columns (excluding the named columns);
/// 1.0 if there are no string columns.
pub fn table_consistency(table: &Table, exclude: &[&str]) -> f64 {
    let scores: Vec<f64> = table
        .columns()
        .iter()
        .filter(|c| !exclude.contains(&c.name()) && c.as_str_slice().is_some())
        .map(column_consistency)
        .collect();
    if scores.is_empty() {
        1.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_normalize_runs() {
        assert_eq!(format_signature("Alicante"), "C");
        assert_eq!(format_signature("ALICANTE"), "A");
        assert_eq!(format_signature("alicante"), "a");
        assert_eq!(format_signature("2024-01-31"), "9-9-9");
        assert_eq!(format_signature("31/01/2024"), "9/9/9");
        assert_eq!(format_signature("A-12"), "A-9");
        assert_eq!(format_signature(" padded "), " a ");
    }

    #[test]
    fn signatures_match_reference_on_tricky_strings() {
        for s in [
            "",
            "AAbb",
            "AbC9 x",
            "  ",
            "a1B2c3",
            "ABc",
            "ÜberStraße",
            "x\u{1}y",
        ] {
            assert_eq!(
                format_signature(s),
                crate::reference::consistency::format_signature(s),
                "signature of {s:?} drifted from the reference"
            );
        }
    }

    #[test]
    fn uniform_column_is_consistent() {
        let c = Column::from_str_values("d", ["2024-01-01", "2023-12-31", "2022-06-15"]);
        assert_eq!(column_consistency(&c), 1.0);
    }

    #[test]
    fn mixed_date_formats_lower_consistency() {
        let c = Column::from_str_values("d", ["2024-01-01", "01/02/2024", "2023-12-31"]);
        assert!((column_consistency(&c) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn case_mangling_detected() {
        let c = Column::from_str_values("city", ["Madrid", "MADRID", "Sevilla", "Bilbao"]);
        assert!((column_consistency(&c) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn numeric_column_is_trivially_consistent() {
        let c = Column::from_f64("x", [1.0, 2.0]);
        assert_eq!(column_consistency(&c), 1.0);
    }

    #[test]
    fn table_mean_respects_exclusions() {
        let t = Table::new(vec![
            Column::from_str_values("clean", ["Aa", "Bb"]),
            Column::from_str_values("dirty", ["Aa", "bb"]),
        ])
        .unwrap();
        assert!((table_consistency(&t, &[]) - 0.75).abs() < 1e-12);
        assert_eq!(table_consistency(&t, &["dirty"]), 1.0);
    }
}
