//! Inter-attribute correlation / redundancy measurement.
//!
//! The paper's own motivating example (§3.1): strongly correlated inputs
//! make a classifier's output "correct but not useful". These measures
//! quantify that redundancy so the advisor can warn about it.

use openbi_table::{stats, Table};

/// Redundancy summary over the numeric columns of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationReport {
    /// Maximum absolute pairwise Pearson correlation (0 if < 2 columns).
    pub max_abs: f64,
    /// Mean absolute pairwise Pearson correlation (0 if < 2 columns).
    pub mean_abs: f64,
    /// Pairs with |r| above the redundancy threshold, as
    /// `(col_a, col_b, r)`.
    pub redundant_pairs: Vec<(String, String, f64)>,
}

/// Compute the correlation report; `exclude` columns (e.g. the target and
/// identifiers) are skipped. `threshold` flags redundant pairs.
pub fn correlation_report(table: &Table, exclude: &[&str], threshold: f64) -> CorrelationReport {
    let keep: Vec<&str> = table
        .column_names()
        .into_iter()
        .filter(|n| !exclude.contains(n))
        .collect();
    let sub = table.select(&keep).expect("names from table");
    let (names, m) = stats::correlation_matrix(&sub);
    let n = names.len();
    let mut max_abs: f64 = 0.0;
    let mut sum_abs = 0.0;
    let mut count = 0usize;
    let mut redundant_pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let r = m[i][j];
            max_abs = max_abs.max(r.abs());
            sum_abs += r.abs();
            count += 1;
            if r.abs() >= threshold {
                redundant_pairs.push((names[i].clone(), names[j].clone(), r));
            }
        }
    }
    CorrelationReport {
        max_abs,
        mean_abs: if count == 0 {
            0.0
        } else {
            sum_abs / count as f64
        },
        redundant_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn table_with_copy() -> Table {
        Table::new(vec![
            Column::from_f64("x", [1.0, 2.0, 3.0, 4.0]),
            Column::from_f64("x_copy", [2.0, 4.0, 6.0, 8.0]),
            Column::from_f64("z", [4.0, 1.0, 3.0, 2.0]),
            Column::from_str_values("label", ["a", "b", "a", "b"]),
        ])
        .unwrap()
    }

    #[test]
    fn detects_redundant_pair() {
        let r = correlation_report(&table_with_copy(), &["label"], 0.95);
        assert!((r.max_abs - 1.0).abs() < 1e-9);
        assert_eq!(r.redundant_pairs.len(), 1);
        assert_eq!(r.redundant_pairs[0].0, "x");
        assert_eq!(r.redundant_pairs[0].1, "x_copy");
    }

    #[test]
    fn exclusion_removes_columns() {
        let r = correlation_report(&table_with_copy(), &["x_copy", "label"], 0.95);
        assert!(r.redundant_pairs.is_empty());
        assert!(r.max_abs < 0.95);
    }

    #[test]
    fn single_numeric_column_is_zero() {
        let t = Table::new(vec![Column::from_f64("only", [1.0, 2.0])]).unwrap();
        let r = correlation_report(&t, &[], 0.9);
        assert_eq!(r.max_abs, 0.0);
        assert_eq!(r.mean_abs, 0.0);
    }

    #[test]
    fn mean_abs_averages_pairs() {
        let r = correlation_report(&table_with_copy(), &["label"], 0.99);
        assert!(r.mean_abs > 0.0 && r.mean_abs < 1.0);
    }
}
