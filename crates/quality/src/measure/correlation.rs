//! Inter-attribute correlation / redundancy measurement.
//!
//! The paper's own motivating example (§3.1): strongly correlated inputs
//! make a classifier's output "correct but not useful". These measures
//! quantify that redundancy so the advisor can warn about it.
//!
//! The kernel is columnar: all pairwise coefficients are accumulated in
//! two row-major sweeps over the packed column slices (sweep 1: per-pair
//! counts and sums for the means; sweep 2: per-pair centered co-moments),
//! instead of the reference's per-pair `pearson` re-scans, each of which
//! cloned the sub-table and re-converted both columns. Accumulation
//! order per pair is row order — the same addition order the reference
//! uses — so the coefficients are bit-identical.

use super::{pack_numeric, PackedColumn};
use openbi_table::Table;

/// Redundancy summary over the numeric columns of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationReport {
    /// Maximum absolute pairwise Pearson correlation (0 if < 2 columns).
    pub max_abs: f64,
    /// Mean absolute pairwise Pearson correlation (0 if < 2 columns).
    pub mean_abs: f64,
    /// Pairs with |r| above the redundancy threshold, as
    /// `(col_a, col_b, r)`.
    pub redundant_pairs: Vec<(String, String, f64)>,
}

/// Compute the correlation report; `exclude` columns (e.g. the target and
/// identifiers) are skipped. `threshold` flags redundant pairs.
pub fn correlation_report(table: &Table, exclude: &[&str], threshold: f64) -> CorrelationReport {
    report_from_packed(&pack_numeric(table, exclude), threshold)
}

/// The correlation kernel over already-packed columns.
///
/// A cell participates in a pair iff both cells are present **and
/// finite** — the same pair filter as `openbi_table::stats::pearson`.
pub(crate) fn report_from_packed(packed: &[PackedColumn], threshold: f64) -> CorrelationReport {
    let p = packed.len();
    let n_pairs = p * (p - 1) / 2;
    let n_rows = packed.first().map(|c| c.values.len()).unwrap_or(0);
    let mut cnt = vec![0usize; n_pairs];
    let mut sx = vec![0.0f64; n_pairs];
    let mut sy = vec![0.0f64; n_pairs];
    let mut usable = vec![false; p];
    let mut vals = vec![0.0f64; p];
    // Sweep 1: per-pair complete-pair counts and coordinate sums.
    for r in 0..n_rows {
        for (d, c) in packed.iter().enumerate() {
            let v = c.values[r];
            usable[d] = c.present[r] && v.is_finite();
            vals[d] = v;
        }
        let mut t = 0;
        for i in 0..p {
            for j in (i + 1)..p {
                if usable[i] && usable[j] {
                    cnt[t] += 1;
                    sx[t] += vals[i];
                    sy[t] += vals[j];
                }
                t += 1;
            }
        }
    }
    let mx: Vec<f64> = cnt
        .iter()
        .zip(&sx)
        .map(|(&n, &s)| if n > 0 { s / n as f64 } else { 0.0 })
        .collect();
    let my: Vec<f64> = cnt
        .iter()
        .zip(&sy)
        .map(|(&n, &s)| if n > 0 { s / n as f64 } else { 0.0 })
        .collect();
    // Sweep 2: centered co-moments around the per-pair means.
    let mut sxy = vec![0.0f64; n_pairs];
    let mut sxx = vec![0.0f64; n_pairs];
    let mut syy = vec![0.0f64; n_pairs];
    for r in 0..n_rows {
        for (d, c) in packed.iter().enumerate() {
            let v = c.values[r];
            usable[d] = c.present[r] && v.is_finite();
            vals[d] = v;
        }
        let mut t = 0;
        for i in 0..p {
            for j in (i + 1)..p {
                if usable[i] && usable[j] {
                    let dx = vals[i] - mx[t];
                    let dy = vals[j] - my[t];
                    sxy[t] += dx * dy;
                    sxx[t] += dx * dx;
                    syy[t] += dy * dy;
                }
                t += 1;
            }
        }
    }
    let mut max_abs: f64 = 0.0;
    let mut sum_abs = 0.0;
    let mut count = 0usize;
    let mut redundant_pairs = Vec::new();
    let mut t = 0;
    for i in 0..p {
        for j in (i + 1)..p {
            // Same guards as `stats::pearson`: needs ≥ 2 complete pairs
            // and nonzero variance on both sides; otherwise the pair
            // contributes 0 (matching `pearson(..).unwrap_or(0.0)`).
            let r = if cnt[t] < 2 || sxx[t] == 0.0 || syy[t] == 0.0 {
                0.0
            } else {
                (sxy[t] / (sxx[t] * syy[t]).sqrt()).clamp(-1.0, 1.0)
            };
            max_abs = max_abs.max(r.abs());
            sum_abs += r.abs();
            count += 1;
            if r.abs() >= threshold {
                redundant_pairs.push((packed[i].name.clone(), packed[j].name.clone(), r));
            }
            t += 1;
        }
    }
    CorrelationReport {
        max_abs,
        mean_abs: if count == 0 {
            0.0
        } else {
            sum_abs / count as f64
        },
        redundant_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn table_with_copy() -> Table {
        Table::new(vec![
            Column::from_f64("x", [1.0, 2.0, 3.0, 4.0]),
            Column::from_f64("x_copy", [2.0, 4.0, 6.0, 8.0]),
            Column::from_f64("z", [4.0, 1.0, 3.0, 2.0]),
            Column::from_str_values("label", ["a", "b", "a", "b"]),
        ])
        .unwrap()
    }

    #[test]
    fn detects_redundant_pair() {
        let r = correlation_report(&table_with_copy(), &["label"], 0.95);
        assert!((r.max_abs - 1.0).abs() < 1e-9);
        assert_eq!(r.redundant_pairs.len(), 1);
        assert_eq!(r.redundant_pairs[0].0, "x");
        assert_eq!(r.redundant_pairs[0].1, "x_copy");
    }

    #[test]
    fn exclusion_removes_columns() {
        let r = correlation_report(&table_with_copy(), &["x_copy", "label"], 0.95);
        assert!(r.redundant_pairs.is_empty());
        assert!(r.max_abs < 0.95);
    }

    #[test]
    fn single_numeric_column_is_zero() {
        let t = Table::new(vec![Column::from_f64("only", [1.0, 2.0])]).unwrap();
        let r = correlation_report(&t, &[], 0.9);
        assert_eq!(r.max_abs, 0.0);
        assert_eq!(r.mean_abs, 0.0);
    }

    #[test]
    fn mean_abs_averages_pairs() {
        let r = correlation_report(&table_with_copy(), &["label"], 0.99);
        assert!(r.mean_abs > 0.0 && r.mean_abs < 1.0);
    }

    #[test]
    fn matches_reference_bits_with_nulls_and_ints() {
        let t = Table::new(vec![
            Column::from_opt_f64("a", [Some(1.0), None, Some(2.5), Some(4.0), Some(0.5)]),
            Column::from_i64("b", [3, 1, 4, 1, 5]),
            Column::from_opt_f64("c", [Some(2.0), Some(9.0), None, Some(6.5), Some(1.0)]),
        ])
        .unwrap();
        let live = correlation_report(&t, &[], 0.9);
        let frozen = crate::reference::correlation::correlation_report(&t, &[], 0.9);
        assert_eq!(live.max_abs.to_bits(), frozen.max_abs.to_bits());
        assert_eq!(live.mean_abs.to_bits(), frozen.mean_abs.to_bits());
        assert_eq!(live.redundant_pairs.len(), frozen.redundant_pairs.len());
    }

    #[test]
    fn nan_cells_do_not_poison_coefficients() {
        let t = Table::new(vec![
            Column::from_f64("a", [1.0, f64::NAN, 3.0, 4.0]),
            Column::from_f64("b", [2.0, 5.0, 6.0, 8.0]),
        ])
        .unwrap();
        let r = correlation_report(&t, &[], 0.9);
        assert!(r.max_abs.is_finite());
        assert!(r.mean_abs.is_finite());
    }
}
