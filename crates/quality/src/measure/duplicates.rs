//! Duplicate detection: exact and near duplicates.
//!
//! Exact duplicates are found by hashed row fingerprints: each cell is
//! folded column-major into a per-row `u64` hash (no per-row `String`
//! allocation, unlike the reference's `Table::row_key` keys), rows are
//! bucketed by hash, and every bucket is verified by exact typed cell
//! comparison — so a hash collision can never merge distinct rows. The
//! equality relation matches the reference's textual keys (all NaNs
//! equal, `0.0` ≠ `-0.0`, null ≠ empty string) except that typed
//! comparison also closes the reference's separator-injection ambiguity
//! (a string cell containing the key separator could alias another row).
//!
//! Near duplicates use a normalized per-attribute distance with a
//! configurable threshold — the classic record-matching setting of
//! Elmagarmid et al. \[5\] and Ananthakrishna et al. \[1\], scoped to a
//! single table.

use openbi_table::fingerprint::{canonical_f64_bits, mix_u64, row_hash_seed};
use openbi_table::{ColumnData, Table, Value};
use std::collections::HashMap;

/// Per-row content hashes: every cell folded column-major into one `u64`
/// per row, with null/value tags and canonical float bits.
fn row_hashes(table: &Table) -> Vec<u64> {
    let mut hashes = vec![row_hash_seed(); table.n_rows()];
    for c in table.columns() {
        match c.data() {
            ColumnData::Int(v) => {
                for (h, cell) in hashes.iter_mut().zip(v) {
                    *h = match cell {
                        None => mix_u64(*h, 0),
                        Some(i) => mix_u64(mix_u64(*h, 1), *i as u64),
                    };
                }
            }
            ColumnData::Float(v) => {
                for (h, cell) in hashes.iter_mut().zip(v) {
                    *h = match cell {
                        None => mix_u64(*h, 0),
                        Some(x) => mix_u64(mix_u64(*h, 1), canonical_f64_bits(*x)),
                    };
                }
            }
            ColumnData::Str(v) => {
                for (h, cell) in hashes.iter_mut().zip(v) {
                    *h = match cell {
                        None => mix_u64(*h, 0),
                        Some(s) => {
                            let mut sh = mix_u64(*h, 1);
                            sh = mix_u64(sh, s.len() as u64);
                            for chunk in s.as_bytes().chunks(8) {
                                let mut word = [0u8; 8];
                                word[..chunk.len()].copy_from_slice(chunk);
                                sh = mix_u64(sh, u64::from_le_bytes(word));
                            }
                            sh
                        }
                    };
                }
            }
            ColumnData::Bool(v) => {
                for (h, cell) in hashes.iter_mut().zip(v) {
                    *h = match cell {
                        None => mix_u64(*h, 0),
                        Some(b) => mix_u64(mix_u64(*h, 1), *b as u64),
                    };
                }
            }
        }
    }
    hashes
}

/// Exact typed equality of two rows: nulls match nulls, floats compare by
/// canonical bits (all NaNs equal, signed zeros distinct).
fn rows_equal(table: &Table, a: usize, b: usize) -> bool {
    table.columns().iter().all(|c| match c.data() {
        ColumnData::Int(v) => v[a] == v[b],
        ColumnData::Float(v) => match (v[a], v[b]) {
            (None, None) => true,
            (Some(x), Some(y)) => canonical_f64_bits(x) == canonical_f64_bits(y),
            _ => false,
        },
        ColumnData::Str(v) => v[a] == v[b],
        ColumnData::Bool(v) => v[a] == v[b],
    })
}

/// All exact-duplicate groups (including singletons), in first-occurrence
/// order. Buckets rows by content hash, then splits each bucket by exact
/// typed comparison.
fn duplicate_groups(table: &Table) -> Vec<Vec<usize>> {
    let hashes = row_hashes(table);
    // hash → indices into `groups` of the groups sharing that hash.
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (row, &h) in hashes.iter().enumerate() {
        let candidates = by_hash.entry(h).or_default();
        let found = candidates
            .iter()
            .copied()
            .find(|&g| rows_equal(table, groups[g][0], row));
        match found {
            Some(g) => groups[g].push(row),
            None => {
                candidates.push(groups.len());
                groups.push(vec![row]);
            }
        }
    }
    groups
}

/// Fraction of rows that exactly duplicate an earlier row.
pub fn exact_duplicate_ratio(table: &Table) -> f64 {
    if table.n_rows() == 0 {
        return 0.0;
    }
    let dups: usize = duplicate_groups(table).iter().map(|g| g.len() - 1).sum();
    dups as f64 / table.n_rows() as f64
}

/// Groups of row indices that are exact duplicates of each other
/// (only groups of size ≥ 2 are returned, in first-occurrence order).
pub fn exact_duplicate_groups(table: &Table) -> Vec<Vec<usize>> {
    duplicate_groups(table)
        .into_iter()
        .filter(|g| g.len() >= 2)
        .collect()
}

/// Normalized distance between two rows: numeric attributes are compared
/// relative to their column range, strings by inequality, nulls match
/// nulls. Result in `[0,1]` (mean over attributes).
fn row_distance(table: &Table, ranges: &[Option<(f64, f64)>], a: usize, b: usize) -> f64 {
    let mut total = 0.0;
    let n = table.n_cols();
    for (ci, col) in table.columns().iter().enumerate() {
        let va = col.get(a).expect("in-bounds");
        let vb = col.get(b).expect("in-bounds");
        let d = match (&va, &vb) {
            (Value::Null, Value::Null) => 0.0,
            (Value::Null, _) | (_, Value::Null) => 1.0,
            _ => match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => match ranges[ci] {
                    Some((lo, hi)) if hi > lo => ((x - y).abs() / (hi - lo)).min(1.0),
                    _ => {
                        if x == y {
                            0.0
                        } else {
                            1.0
                        }
                    }
                },
                _ => {
                    if va == vb {
                        0.0
                    } else {
                        1.0
                    }
                }
            },
        };
        total += d;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Fraction of rows whose normalized distance to some earlier row is at
/// most `threshold`. Quadratic; intended for profile-sized samples.
pub fn near_duplicate_ratio(table: &Table, threshold: f64) -> f64 {
    let n = table.n_rows();
    if n < 2 {
        return 0.0;
    }
    let ranges: Vec<Option<(f64, f64)>> = table
        .columns()
        .iter()
        .map(|c| {
            if !c.dtype().is_numeric() {
                return None;
            }
            let vals: Vec<f64> = c.to_f64_vec().into_iter().flatten().collect();
            if vals.is_empty() {
                None
            } else {
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                Some((lo, hi))
            }
        })
        .collect();
    let mut dups = 0usize;
    for i in 1..n {
        for j in 0..i {
            if row_distance(table, &ranges, i, j) <= threshold {
                dups += 1;
                break;
            }
        }
    }
    dups as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn dup_table() -> Table {
        Table::new(vec![
            Column::from_i64("a", [1, 2, 1, 1]),
            Column::from_str_values("b", ["x", "y", "x", "x"]),
        ])
        .unwrap()
    }

    #[test]
    fn exact_ratio_counts_later_occurrences() {
        // rows 2 and 3 duplicate row 0 → 2/4.
        assert!((exact_duplicate_ratio(&dup_table()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn groups_collect_indices() {
        let groups = exact_duplicate_groups(&dup_table());
        assert_eq!(groups, vec![vec![0, 2, 3]]);
    }

    #[test]
    fn unique_rows_have_zero_ratio() {
        let t = Table::new(vec![Column::from_i64("a", [1, 2, 3])]).unwrap();
        assert_eq!(exact_duplicate_ratio(&t), 0.0);
        assert!(exact_duplicate_groups(&t).is_empty());
    }

    #[test]
    fn null_and_value_are_distinct_rows() {
        let t = Table::new(vec![Column::from_opt_i64("a", [Some(1), None, None])]).unwrap();
        // Row 2 duplicates row 1 (both null) → 1/3.
        assert!((exact_duplicate_ratio(&t) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn null_differs_from_empty_string() {
        let t = Table::new(vec![Column::from_opt_str(
            "s",
            [Some(String::new()), None, Some(String::new())],
        )])
        .unwrap();
        assert!((exact_duplicate_ratio(&t) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(exact_duplicate_groups(&t), vec![vec![0, 2]]);
    }

    #[test]
    fn nan_rows_duplicate_but_signed_zeros_do_not() {
        let t = Table::new(vec![Column::from_f64(
            "x",
            [f64::NAN, f64::from_bits(0x7FF8_0000_0000_0001), 0.0, -0.0],
        )])
        .unwrap();
        // The two NaN payloads collapse; 0.0 and -0.0 stay distinct —
        // exactly the `Value::to_string` key semantics ("NaN", "0", "-0").
        assert!((exact_duplicate_ratio(&t) - 0.25).abs() < 1e-12);
        assert_eq!(exact_duplicate_groups(&t), vec![vec![0, 1]]);
    }

    #[test]
    fn near_duplicates_detected_within_threshold() {
        let t = Table::new(vec![
            Column::from_f64("x", [0.0, 0.05, 10.0]),
            Column::from_str_values("s", ["a", "a", "b"]),
        ])
        .unwrap();
        // Row 1 is within 0.1 of row 0 in normalized distance.
        let ratio = near_duplicate_ratio(&t, 0.1);
        assert!((ratio - 1.0 / 3.0).abs() < 1e-12);
        // With zero threshold nothing matches (row 1 differs slightly).
        assert_eq!(near_duplicate_ratio(&t, 0.0), 0.0);
    }

    #[test]
    fn near_duplicates_on_tiny_table() {
        let t = Table::new(vec![Column::from_i64("a", [1])]).unwrap();
        assert_eq!(near_duplicate_ratio(&t, 0.5), 0.0);
    }
}
