//! Duplicate detection: exact and near duplicates.
//!
//! Exact duplicates use the table's row-key hashing; near duplicates use
//! a normalized per-attribute distance with a configurable threshold —
//! the classic record-matching setting of Elmagarmid et al. \[5\] and
//! Ananthakrishna et al. \[1\], scoped to a single table.

use openbi_table::{Table, Value};
use std::collections::HashMap;

/// Fraction of rows that exactly duplicate an earlier row.
pub fn exact_duplicate_ratio(table: &Table) -> f64 {
    if table.n_rows() == 0 {
        return 0.0;
    }
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut dups = 0usize;
    for i in 0..table.n_rows() {
        let key = table.row_key(i).expect("in-bounds");
        if seen.insert(key, i).is_some() {
            dups += 1;
        }
    }
    dups as f64 / table.n_rows() as f64
}

/// Groups of row indices that are exact duplicates of each other
/// (only groups of size ≥ 2 are returned, in first-occurrence order).
pub fn exact_duplicate_groups(table: &Table) -> Vec<Vec<usize>> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for i in 0..table.n_rows() {
        let key = table.row_key(i).expect("in-bounds");
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                Vec::new()
            })
            .push(i);
    }
    order
        .into_iter()
        .filter_map(|k| {
            let g = groups.remove(&k).expect("inserted");
            (g.len() >= 2).then_some(g)
        })
        .collect()
}

/// Normalized distance between two rows: numeric attributes are compared
/// relative to their column range, strings by inequality, nulls match
/// nulls. Result in `[0,1]` (mean over attributes).
fn row_distance(table: &Table, ranges: &[Option<(f64, f64)>], a: usize, b: usize) -> f64 {
    let mut total = 0.0;
    let n = table.n_cols();
    for (ci, col) in table.columns().iter().enumerate() {
        let va = col.get(a).expect("in-bounds");
        let vb = col.get(b).expect("in-bounds");
        let d = match (&va, &vb) {
            (Value::Null, Value::Null) => 0.0,
            (Value::Null, _) | (_, Value::Null) => 1.0,
            _ => match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => match ranges[ci] {
                    Some((lo, hi)) if hi > lo => ((x - y).abs() / (hi - lo)).min(1.0),
                    _ => {
                        if x == y {
                            0.0
                        } else {
                            1.0
                        }
                    }
                },
                _ => {
                    if va == vb {
                        0.0
                    } else {
                        1.0
                    }
                }
            },
        };
        total += d;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Fraction of rows whose normalized distance to some earlier row is at
/// most `threshold`. Quadratic; intended for profile-sized samples.
pub fn near_duplicate_ratio(table: &Table, threshold: f64) -> f64 {
    let n = table.n_rows();
    if n < 2 {
        return 0.0;
    }
    let ranges: Vec<Option<(f64, f64)>> = table
        .columns()
        .iter()
        .map(|c| {
            if !c.dtype().is_numeric() {
                return None;
            }
            let vals: Vec<f64> = c.to_f64_vec().into_iter().flatten().collect();
            if vals.is_empty() {
                None
            } else {
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                Some((lo, hi))
            }
        })
        .collect();
    let mut dups = 0usize;
    for i in 1..n {
        for j in 0..i {
            if row_distance(table, &ranges, i, j) <= threshold {
                dups += 1;
                break;
            }
        }
    }
    dups as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn dup_table() -> Table {
        Table::new(vec![
            Column::from_i64("a", [1, 2, 1, 1]),
            Column::from_str_values("b", ["x", "y", "x", "x"]),
        ])
        .unwrap()
    }

    #[test]
    fn exact_ratio_counts_later_occurrences() {
        // rows 2 and 3 duplicate row 0 → 2/4.
        assert!((exact_duplicate_ratio(&dup_table()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn groups_collect_indices() {
        let groups = exact_duplicate_groups(&dup_table());
        assert_eq!(groups, vec![vec![0, 2, 3]]);
    }

    #[test]
    fn unique_rows_have_zero_ratio() {
        let t = Table::new(vec![Column::from_i64("a", [1, 2, 3])]).unwrap();
        assert_eq!(exact_duplicate_ratio(&t), 0.0);
        assert!(exact_duplicate_groups(&t).is_empty());
    }

    #[test]
    fn null_and_value_are_distinct_rows() {
        let t = Table::new(vec![Column::from_opt_i64("a", [Some(1), None, None])]).unwrap();
        // Row 2 duplicates row 1 (both null) → 1/3.
        assert!((exact_duplicate_ratio(&t) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn near_duplicates_detected_within_threshold() {
        let t = Table::new(vec![
            Column::from_f64("x", [0.0, 0.05, 10.0]),
            Column::from_str_values("s", ["a", "a", "b"]),
        ])
        .unwrap();
        // Row 1 is within 0.1 of row 0 in normalized distance.
        let ratio = near_duplicate_ratio(&t, 0.1);
        assert!((ratio - 1.0 / 3.0).abs() < 1e-12);
        // With zero threshold nothing matches (row 1 differs slightly).
        assert_eq!(near_duplicate_ratio(&t, 0.0), 0.0);
    }

    #[test]
    fn near_duplicates_on_tiny_table() {
        let t = Table::new(vec![Column::from_i64("a", [1])]).unwrap();
        assert_eq!(near_duplicate_ratio(&t, 0.5), 0.0);
    }
}
