//! Measurement of data-quality criteria (paper §3.2.2).
//!
//! Individual criteria live in submodules; [`measure_profile`] combines
//! them into a [`crate::profile::QualityProfile`].
//!
//! The criteria are **columnar single-pass kernels**: numeric columns are
//! packed once per profile into contiguous `f64` slices
//! ([`PackedColumn`]), and correlation, outliers, and both noise
//! estimators consume the packed slices — no per-cell `Value` boxing, no
//! per-pair column re-conversion, no per-row `String` keys. The
//! pre-rewrite row-wise implementation is frozen as [`crate::reference`]
//! and `tests/tests/quality_equivalence.rs` proves the two agree bitwise
//! on every exact criterion.

pub mod balance;
pub mod completeness;
pub mod consistency;
pub mod correlation;
pub mod duplicates;
pub mod noise;
pub mod outliers;

use crate::profile::QualityProfile;
use openbi_table::{ColumnData, Table};

/// Default seed for the noise estimators' deterministic row sampling.
///
/// Any fixed value works (the estimate must simply be reproducible); this
/// one nods to the paper's publication year.
pub const DEFAULT_NOISE_SEED: u64 = 2012;

/// Options controlling profile measurement.
#[derive(Debug, Clone)]
pub struct MeasureOptions {
    /// Target (class) column, if one is designated.
    pub target: Option<String>,
    /// Identifier / ignored columns excluded from feature criteria.
    pub exclude: Vec<String>,
    /// |r| threshold above which a pair counts as redundant.
    pub redundancy_threshold: f64,
    /// Neighborhood size for the noise estimators.
    pub noise_k: usize,
    /// Row cap for the quadratic noise estimators.
    pub noise_max_rows: usize,
    /// Seed for the deterministic row sample the noise estimators draw
    /// when the table exceeds `noise_max_rows`.
    pub noise_seed: u64,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            target: None,
            exclude: vec![],
            redundancy_threshold: 0.95,
            noise_k: 5,
            noise_max_rows: noise::DEFAULT_MAX_ROWS,
            noise_seed: DEFAULT_NOISE_SEED,
        }
    }
}

impl MeasureOptions {
    /// Convenience constructor with a target column.
    pub fn with_target(target: impl Into<String>) -> Self {
        MeasureOptions {
            target: Some(target.into()),
            ..Default::default()
        }
    }

    pub(crate) fn feature_exclusions(&self) -> Vec<&str> {
        let mut ex: Vec<&str> = self.exclude.iter().map(String::as_str).collect();
        if let Some(t) = &self.target {
            ex.push(t.as_str());
        }
        ex
    }
}

/// One numeric column packed into contiguous `f64` storage.
///
/// `values[i]` is the cell's numeric value (ints widened to `f64`, float
/// cells kept raw — including NaN and ±inf) and `present[i]` records
/// whether the cell was non-null. Keeping presence separate from the
/// value preserves the distinction the reference implementation sees
/// through `Option<f64>`: a NaN *cell* is present (it counts toward
/// outlier-cell totals) while a null is not.
pub(crate) struct PackedColumn {
    /// Column name (for correlation-report pair labels).
    pub name: String,
    /// Cell values; `0.0` placeholder where `present` is false.
    pub values: Vec<f64>,
    /// Non-null mask, parallel to `values`.
    pub present: Vec<bool>,
}

/// Pack the non-excluded numeric (int/float) columns, in table order —
/// one pass per column, shared by the correlation, outlier, and noise
/// kernels.
pub(crate) fn pack_numeric(table: &Table, exclude: &[&str]) -> Vec<PackedColumn> {
    let mut out = Vec::new();
    for c in table.columns() {
        if exclude.contains(&c.name()) || !c.dtype().is_numeric() {
            continue;
        }
        let (values, present): (Vec<f64>, Vec<bool>) = match c.data() {
            ColumnData::Int(v) => v
                .iter()
                .map(|x| match x {
                    Some(i) => (*i as f64, true),
                    None => (0.0, false),
                })
                .unzip(),
            ColumnData::Float(v) => v
                .iter()
                .map(|x| match x {
                    Some(f) => (*f, true),
                    None => (0.0, false),
                })
                .unzip(),
            // `DataType::is_numeric` is int/float only.
            ColumnData::Str(_) | ColumnData::Bool(_) => unreachable!("filtered above"),
        };
        out.push(PackedColumn {
            name: c.name().to_string(),
            values,
            present,
        });
    }
    out
}

/// Measure every quality criterion of a table into one profile.
///
/// Records the wall time into the `quality.measure.seconds` histogram
/// when an [`openbi_obs`] registry is installed.
pub fn measure_profile(table: &Table, options: &MeasureOptions) -> QualityProfile {
    let _timer = openbi_obs::span("quality.measure.seconds");
    let ex = options.feature_exclusions();
    let n_attributes = table
        .column_names()
        .iter()
        .filter(|n| !ex.contains(n))
        .count();
    let packed = pack_numeric(table, &ex);
    let corr = correlation::report_from_packed(&packed, options.redundancy_threshold);
    let (class_balance, minority_ratio, distinct_class_count, label_noise) = match &options.target {
        Some(t) if table.has_column(t) => {
            let b = balance::balance_report(table, t).expect("column exists");
            let noise = noise::label_noise_from_packed(
                table,
                t,
                &packed,
                options.noise_k,
                options.noise_max_rows,
                options.noise_seed,
            );
            (b.normalized_entropy, b.minority_ratio, b.class_count, noise)
        }
        _ => (1.0, 1.0, 0, 0.0),
    };
    QualityProfile {
        n_rows: table.n_rows(),
        n_attributes,
        completeness: completeness::completeness(table),
        duplicate_ratio: duplicates::exact_duplicate_ratio(table),
        max_abs_correlation: corr.max_abs,
        mean_abs_correlation: corr.mean_abs,
        class_balance,
        minority_ratio,
        dimensionality: if table.n_rows() == 0 {
            1.0
        } else {
            (n_attributes as f64 / table.n_rows() as f64).min(1.0)
        },
        outlier_ratio: outliers::ratio_from_packed(&packed),
        label_noise_estimate: label_noise,
        attr_noise_estimate: noise::attribute_noise_from_packed(
            table,
            &packed,
            options.noise_k,
            options.noise_max_rows,
            options.noise_seed,
        ),
        consistency: consistency::table_consistency(table, &ex),
        distinct_class_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn sample() -> Table {
        Table::new(vec![
            Column::from_i64("id", (0..10).collect::<Vec<i64>>()),
            Column::from_f64("x", (0..10).map(|i| i as f64).collect::<Vec<f64>>()),
            Column::from_f64("x2", (0..10).map(|i| 2.0 * i as f64).collect::<Vec<f64>>()),
            Column::from_opt_f64(
                "y",
                (0..10)
                    .map(|i| if i == 3 { None } else { Some((i * i) as f64) })
                    .collect::<Vec<Option<f64>>>(),
            ),
            Column::from_str_values(
                "class",
                (0..10)
                    .map(|i| if i < 7 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn profile_combines_criteria() {
        let opts = MeasureOptions {
            target: Some("class".into()),
            exclude: vec!["id".into()],
            ..Default::default()
        };
        let p = measure_profile(&sample(), &opts);
        assert_eq!(p.n_rows, 10);
        assert_eq!(p.n_attributes, 3); // x, x2, y
        assert!(p.completeness > 0.9 && p.completeness < 1.0);
        assert!(p.max_abs_correlation > 0.99, "x and x2 are copies");
        assert_eq!(p.distinct_class_count, 2);
        assert!((p.minority_ratio - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(p.duplicate_ratio, 0.0);
    }

    #[test]
    fn no_target_defaults_balance() {
        let p = measure_profile(&sample(), &MeasureOptions::default());
        assert_eq!(p.class_balance, 1.0);
        assert_eq!(p.distinct_class_count, 0);
        assert_eq!(p.label_noise_estimate, 0.0);
    }

    #[test]
    fn unknown_target_is_tolerated() {
        let p = measure_profile(&sample(), &MeasureOptions::with_target("nope"));
        assert_eq!(p.distinct_class_count, 0);
    }

    #[test]
    fn dimensionality_capped_at_one() {
        let t = Table::new(vec![
            Column::from_f64("a", [1.0]),
            Column::from_f64("b", [2.0]),
        ])
        .unwrap();
        let p = measure_profile(&t, &MeasureOptions::default());
        assert_eq!(p.dimensionality, 1.0);
    }

    #[test]
    fn packing_preserves_presence_and_raw_values() {
        let t = Table::new(vec![
            Column::from_opt_i64("i", [Some(3), None]),
            Column::from_opt_f64("f", [Some(f64::NAN), Some(-0.0)]),
            Column::from_str_values("s", ["a", "b"]),
            Column::from_bool("b", [true, false]),
        ])
        .unwrap();
        let packed = pack_numeric(&t, &[]);
        assert_eq!(packed.len(), 2, "strings and bools are not numeric");
        assert_eq!(packed[0].name, "i");
        assert_eq!(packed[0].values[0], 3.0);
        assert_eq!(packed[0].present, vec![true, false]);
        assert!(packed[1].values[0].is_nan(), "NaN cells stay present");
        assert!(packed[1].present[0]);
        assert_eq!(packed[1].values[1].to_bits(), (-0.0f64).to_bits());
        let excluded = pack_numeric(&t, &["i"]);
        assert_eq!(excluded.len(), 1);
    }
}
