//! Measurement of data-quality criteria (paper §3.2.2).
//!
//! Individual criteria live in submodules; [`measure_profile`] combines
//! them into a [`crate::profile::QualityProfile`].

pub mod balance;
pub mod completeness;
pub mod consistency;
pub mod correlation;
pub mod duplicates;
pub mod noise;
pub mod outliers;

use crate::profile::QualityProfile;
use openbi_table::Table;

/// Options controlling profile measurement.
#[derive(Debug, Clone)]
pub struct MeasureOptions {
    /// Target (class) column, if one is designated.
    pub target: Option<String>,
    /// Identifier / ignored columns excluded from feature criteria.
    pub exclude: Vec<String>,
    /// |r| threshold above which a pair counts as redundant.
    pub redundancy_threshold: f64,
    /// Neighborhood size for the noise estimators.
    pub noise_k: usize,
    /// Row cap for the quadratic noise estimators.
    pub noise_max_rows: usize,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            target: None,
            exclude: vec![],
            redundancy_threshold: 0.95,
            noise_k: 5,
            noise_max_rows: noise::DEFAULT_MAX_ROWS,
        }
    }
}

impl MeasureOptions {
    /// Convenience constructor with a target column.
    pub fn with_target(target: impl Into<String>) -> Self {
        MeasureOptions {
            target: Some(target.into()),
            ..Default::default()
        }
    }

    fn feature_exclusions(&self) -> Vec<&str> {
        let mut ex: Vec<&str> = self.exclude.iter().map(String::as_str).collect();
        if let Some(t) = &self.target {
            ex.push(t.as_str());
        }
        ex
    }
}

/// Measure every quality criterion of a table into one profile.
pub fn measure_profile(table: &Table, options: &MeasureOptions) -> QualityProfile {
    let ex = options.feature_exclusions();
    let n_attributes = table
        .column_names()
        .iter()
        .filter(|n| !ex.contains(n))
        .count();
    let corr = correlation::correlation_report(table, &ex, options.redundancy_threshold);
    let (class_balance, minority_ratio, distinct_class_count, label_noise) = match &options.target {
        Some(t) if table.has_column(t) => {
            let b = balance::balance_report(table, t).expect("column exists");
            let noise =
                noise::label_noise_estimate(table, t, options.noise_k, options.noise_max_rows);
            (b.normalized_entropy, b.minority_ratio, b.class_count, noise)
        }
        _ => (1.0, 1.0, 0, 0.0),
    };
    QualityProfile {
        n_rows: table.n_rows(),
        n_attributes,
        completeness: completeness::completeness(table),
        duplicate_ratio: duplicates::exact_duplicate_ratio(table),
        max_abs_correlation: corr.max_abs,
        mean_abs_correlation: corr.mean_abs,
        class_balance,
        minority_ratio,
        dimensionality: if table.n_rows() == 0 {
            1.0
        } else {
            (n_attributes as f64 / table.n_rows() as f64).min(1.0)
        },
        outlier_ratio: outliers::outlier_ratio(table, &ex),
        label_noise_estimate: label_noise,
        attr_noise_estimate: noise::attribute_noise_estimate(
            table,
            &ex,
            options.noise_k,
            options.noise_max_rows,
        ),
        consistency: consistency::table_consistency(table, &ex),
        distinct_class_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openbi_table::Column;

    fn sample() -> Table {
        Table::new(vec![
            Column::from_i64("id", (0..10).collect::<Vec<i64>>()),
            Column::from_f64("x", (0..10).map(|i| i as f64).collect::<Vec<f64>>()),
            Column::from_f64("x2", (0..10).map(|i| 2.0 * i as f64).collect::<Vec<f64>>()),
            Column::from_opt_f64(
                "y",
                (0..10)
                    .map(|i| if i == 3 { None } else { Some((i * i) as f64) })
                    .collect::<Vec<Option<f64>>>(),
            ),
            Column::from_str_values(
                "class",
                (0..10)
                    .map(|i| if i < 7 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn profile_combines_criteria() {
        let opts = MeasureOptions {
            target: Some("class".into()),
            exclude: vec!["id".into()],
            ..Default::default()
        };
        let p = measure_profile(&sample(), &opts);
        assert_eq!(p.n_rows, 10);
        assert_eq!(p.n_attributes, 3); // x, x2, y
        assert!(p.completeness > 0.9 && p.completeness < 1.0);
        assert!(p.max_abs_correlation > 0.99, "x and x2 are copies");
        assert_eq!(p.distinct_class_count, 2);
        assert!((p.minority_ratio - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(p.duplicate_ratio, 0.0);
    }

    #[test]
    fn no_target_defaults_balance() {
        let p = measure_profile(&sample(), &MeasureOptions::default());
        assert_eq!(p.class_balance, 1.0);
        assert_eq!(p.distinct_class_count, 0);
        assert_eq!(p.label_noise_estimate, 0.0);
    }

    #[test]
    fn unknown_target_is_tolerated() {
        let p = measure_profile(&sample(), &MeasureOptions::with_target("nope"));
        assert_eq!(p.distinct_class_count, 0);
    }

    #[test]
    fn dimensionality_capped_at_one() {
        let t = Table::new(vec![
            Column::from_f64("a", [1.0]),
            Column::from_f64("b", [2.0]),
        ])
        .unwrap();
        let p = measure_profile(&t, &MeasureOptions::default());
        assert_eq!(p.dimensionality, 1.0);
    }
}
