//! Noise estimation without ground truth.
//!
//! * **Label noise** is estimated by k-NN disagreement: the fraction of
//!   rows whose class label differs from the majority label of their k
//!   nearest neighbors in (min-max normalized) numeric feature space.
//!   Clean, separable data scores near 0; randomly flipped labels raise
//!   the score roughly linearly.
//! * **Attribute noise** is estimated by local roughness: for each
//!   numeric attribute, the variance of the attribute within each row's
//!   k-neighborhood (neighbors computed on the *other* attributes),
//!   relative to the attribute's global variance. Smooth structured data
//!   scores low; i.i.d. noise pushes the ratio toward 1.
//!
//! Both estimates are O(n²) in the sample, so rows are capped at
//! `max_rows` — drawn as a seeded deterministic sample of the whole table
//! (`Table::sample_indices`), not the first `max_rows` rows as the frozen
//! [`crate::reference::noise`] does, so noise concentrated late in the
//! table is no longer invisible.
//!
//! The kernels run on a flat row-major scratch matrix gathered from
//! [`PackedColumn`]s, and each neighborhood is found with
//! `select_nth_unstable_by` (O(n) expected) followed by a sort of only
//! the k selected pairs — the reference fully sorted all n−1 distances
//! per row. Distances, normalization, and variance accumulation follow
//! the reference's exact summation order, so for tables within `max_rows`
//! the estimates are bit-identical except where the two documented bug
//! fixes (exclusion handling, tie-breaking) intentionally change them.

use super::{pack_numeric, PackedColumn};
use openbi_table::{Table, Value};

/// Cap on rows used by the quadratic estimators.
pub const DEFAULT_MAX_ROWS: usize = 512;

/// Rows the estimators operate on: all of them when the table fits in
/// `max_rows`, otherwise a seeded deterministic sample, sorted ascending
/// so downstream accumulation stays in table row order.
fn selected_rows(table: &Table, max_rows: usize, seed: u64) -> Vec<usize> {
    let n = table.n_rows();
    if n <= max_rows {
        (0..n).collect()
    } else {
        let mut idx = table.sample_indices(max_rows, seed);
        idx.sort_unstable();
        idx
    }
}

/// Min-max normalized flat row-major feature matrix over the selected
/// rows; nulls become column means. Columns with no present cell among
/// the selected rows are dropped. Returns `(flat, dims)` with
/// `flat.len() == rows.len() * dims`.
fn flat_matrix(packed: &[PackedColumn], rows: &[usize]) -> (Vec<f64>, usize) {
    // Per-column normalization parameters, accumulated in row order —
    // the same addition order as the reference's per-column `Vec`s.
    struct ColParams<'a> {
        col: &'a PackedColumn,
        lo: f64,
        span: f64,
        mean: f64,
    }
    let mut kept: Vec<ColParams> = Vec::new();
    for c in packed {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for &r in rows {
            if c.present[r] {
                let v = c.values[r];
                lo = lo.min(v);
                hi = hi.max(v);
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        kept.push(ColParams {
            col: c,
            lo,
            span: if hi > lo { hi - lo } else { 1.0 },
            mean: sum / count as f64,
        });
    }
    let dims = kept.len();
    let mut flat = vec![0.0f64; rows.len() * dims];
    for (ri, &r) in rows.iter().enumerate() {
        let out = &mut flat[ri * dims..(ri + 1) * dims];
        for (d, p) in kept.iter().enumerate() {
            let v = if p.col.present[r] {
                p.col.values[r]
            } else {
                p.mean
            };
            out[d] = (v - p.lo) / p.span;
        }
    }
    (flat, dims)
}

fn by_dist_then_index(a: &(f64, usize), b: &(f64, usize)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

/// Fill `scratch` with the k nearest neighbors of `row` as
/// `(squared distance, row index)` pairs in (distance, index) order.
/// Partial selection instead of a full sort; the surviving k pairs are
/// then sorted so callers see the reference's neighbor order.
/// Requires `k >= 1` and at least `k` other rows.
fn k_nearest_into(
    flat: &[f64],
    n: usize,
    dims: usize,
    row: usize,
    k: usize,
    skip_dim: Option<usize>,
    scratch: &mut Vec<(f64, usize)>,
) {
    scratch.clear();
    let a = &flat[row * dims..(row + 1) * dims];
    for j in 0..n {
        if j == row {
            continue;
        }
        let b = &flat[j * dims..(j + 1) * dims];
        let mut s = 0.0;
        for d in 0..dims {
            if Some(d) == skip_dim {
                continue;
            }
            let diff = a[d] - b[d];
            s += diff * diff;
        }
        scratch.push((s, j));
    }
    if k < scratch.len() {
        scratch.select_nth_unstable_by(k - 1, by_dist_then_index);
        scratch.truncate(k);
    }
    scratch.sort_by(by_dist_then_index);
}

/// k-NN disagreement estimate of label noise; 0.0 when there is no
/// usable target, no numeric features, or fewer than `k + 1` sampled
/// rows.
///
/// `exclude` columns are kept out of the feature space **in addition to
/// the target** (the frozen reference only dropped the target, so an
/// identifier column would silently poison every neighborhood). A tie
/// for the neighborhood majority never counts as a disagreement when the
/// row's own label is among the tied maxima — the tie verdict no longer
/// depends on vote insertion order.
pub fn label_noise_estimate(
    table: &Table,
    target: &str,
    exclude: &[&str],
    k: usize,
    max_rows: usize,
    seed: u64,
) -> f64 {
    let mut ex: Vec<&str> = exclude.to_vec();
    if !ex.contains(&target) {
        ex.push(target);
    }
    label_noise_from_packed(table, target, &pack_numeric(table, &ex), k, max_rows, seed)
}

/// The label-noise kernel over already-packed feature columns (the
/// target must not be among them).
pub(crate) fn label_noise_from_packed(
    table: &Table,
    target: &str,
    packed: &[PackedColumn],
    k: usize,
    max_rows: usize,
    seed: u64,
) -> f64 {
    let Ok(target_col) = table.column(target) else {
        return 0.0;
    };
    let rows = selected_rows(table, max_rows, seed);
    let n = rows.len();
    if k == 0 || n < k + 1 {
        return 0.0;
    }
    let labels: Vec<Option<String>> = rows
        .iter()
        .map(|&r| match target_col.get(r).expect("in-bounds") {
            Value::Null => None,
            v => Some(v.to_string()),
        })
        .collect();
    let (flat, dims) = flat_matrix(packed, &rows);
    if dims == 0 {
        return 0.0;
    }
    let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
    let mut votes: Vec<(&str, usize)> = Vec::new();
    let mut disagreements = 0usize;
    let mut counted = 0usize;
    for i in 0..n {
        let Some(label) = &labels[i] else { continue };
        k_nearest_into(&flat, n, dims, i, k, None, &mut scratch);
        votes.clear();
        for &(_, j) in scratch.iter() {
            let Some(nl) = &labels[j] else { continue };
            if let Some(entry) = votes.iter_mut().find(|(l, _)| *l == nl.as_str()) {
                entry.1 += 1;
            } else {
                votes.push((nl.as_str(), 1));
            }
        }
        let Some(max_votes) = votes.iter().map(|&(_, c)| c).max() else {
            continue;
        };
        counted += 1;
        let own = votes
            .iter()
            .find(|(l, _)| *l == label.as_str())
            .map_or(0, |&(_, c)| c);
        if own < max_votes {
            disagreements += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        disagreements as f64 / counted as f64
    }
}

/// Local-roughness estimate of attribute noise in `[0,1]`; 0.0 when the
/// table has fewer than two usable numeric attributes or too few rows.
pub fn attribute_noise_estimate(
    table: &Table,
    exclude: &[&str],
    k: usize,
    max_rows: usize,
    seed: u64,
) -> f64 {
    attribute_noise_from_packed(table, &pack_numeric(table, exclude), k, max_rows, seed)
}

/// The attribute-noise kernel over already-packed columns.
pub(crate) fn attribute_noise_from_packed(
    table: &Table,
    packed: &[PackedColumn],
    k: usize,
    max_rows: usize,
    seed: u64,
) -> f64 {
    let rows = selected_rows(table, max_rows, seed);
    let n = rows.len();
    if n < k + 1 {
        return 0.0;
    }
    let (flat, dims) = flat_matrix(packed, &rows);
    if dims < 2 {
        return 0.0;
    }
    if k == 0 {
        // Every neighborhood is the row itself: zero local variance, so
        // the estimate is 0 for any dimension (exactly the reference's
        // result) — skip the O(n²) loop.
        return 0.0;
    }
    let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
    let mut ratio_sum = 0.0;
    let mut ratio_count = 0usize;
    for d in 0..dims {
        let mut global_sum = 0.0;
        for i in 0..n {
            global_sum += flat[i * dims + d];
        }
        let global_mean = global_sum / n as f64;
        let mut global_var = 0.0;
        for i in 0..n {
            let dv = flat[i * dims + d] - global_mean;
            global_var += dv * dv;
        }
        let global_var = global_var / n as f64;
        if global_var < 1e-12 {
            continue;
        }
        let mut local_var_sum = 0.0;
        for i in 0..n {
            k_nearest_into(&flat, n, dims, i, k, Some(d), &mut scratch);
            // Neighbor values first, own value last — the reference's
            // summation order.
            let count = scratch.len() + 1;
            let mut sum = 0.0;
            for &(_, j) in scratch.iter() {
                sum += flat[j * dims + d];
            }
            sum += flat[i * dims + d];
            let m = sum / count as f64;
            let mut var = 0.0;
            for &(_, j) in scratch.iter() {
                let dv = flat[j * dims + d] - m;
                var += dv * dv;
            }
            let dv = flat[i * dims + d] - m;
            var += dv * dv;
            local_var_sum += var / count as f64;
        }
        let local_var = local_var_sum / n as f64;
        ratio_sum += (local_var / global_var).min(1.0);
        ratio_count += 1;
    }
    if ratio_count == 0 {
        0.0
    } else {
        ratio_sum / ratio_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::DEFAULT_NOISE_SEED;
    use openbi_table::Column;

    const SEED: u64 = DEFAULT_NOISE_SEED;

    /// Two well-separated clusters with consistent labels.
    fn clean_table() -> Table {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut label = Vec::new();
        for i in 0..20 {
            let off = i as f64 * 0.01;
            x.push(0.0 + off);
            y.push(0.0 + off);
            label.push("a");
            x.push(10.0 + off);
            y.push(10.0 - off);
            label.push("b");
        }
        Table::new(vec![
            Column::from_f64("x", x),
            Column::from_f64("y", y),
            Column::from_str_values("class", label),
        ])
        .unwrap()
    }

    #[test]
    fn clean_labels_score_near_zero() {
        let t = clean_table();
        let noise = label_noise_estimate(&t, "class", &[], 5, DEFAULT_MAX_ROWS, SEED);
        assert!(noise < 0.05, "noise estimate was {noise}");
    }

    #[test]
    fn flipped_labels_raise_estimate() {
        let mut t = clean_table();
        // Flip every 4th label.
        for i in (0..t.n_rows()).step_by(4) {
            let v = t.get("class", i).unwrap();
            let flipped = if v == Value::Str("a".into()) {
                "b"
            } else {
                "a"
            };
            t.set("class", i, Value::Str(flipped.into())).unwrap();
        }
        let noise = label_noise_estimate(&t, "class", &[], 5, DEFAULT_MAX_ROWS, SEED);
        assert!(noise > 0.15, "noise estimate was {noise}");
    }

    #[test]
    fn missing_target_scores_zero() {
        let t = clean_table();
        assert_eq!(label_noise_estimate(&t, "nope", &[], 5, 512, SEED), 0.0);
    }

    #[test]
    fn tiny_table_scores_zero() {
        let t = Table::new(vec![
            Column::from_f64("x", [1.0, 2.0]),
            Column::from_str_values("class", ["a", "b"]),
        ])
        .unwrap();
        assert_eq!(label_noise_estimate(&t, "class", &[], 5, 512, SEED), 0.0);
    }

    #[test]
    fn excluded_id_column_no_longer_poisons_neighborhoods() {
        // A monotone identifier next to an uninformative feature, with
        // labels alternating in row order: neighborhoods formed on the id
        // pair each row with its opposite-labeled neighbors, while
        // neighborhoods without it are label-agnostic ties.
        let n = 40usize;
        let t = Table::new(vec![
            Column::from_i64("id", (0..n as i64).collect::<Vec<i64>>()),
            Column::from_f64("x", vec![5.0; n]),
            Column::from_str_values(
                "class",
                (0..n)
                    .map(|i| if i % 2 == 0 { "a" } else { "b" })
                    .collect::<Vec<&str>>(),
            ),
        ])
        .unwrap();
        let with_id = label_noise_estimate(&t, "class", &[], 2, 512, SEED);
        let without_id = label_noise_estimate(&t, "class", &["id"], 2, 512, SEED);
        assert!(with_id > 0.5, "id-driven neighborhoods disagree: {with_id}");
        assert!(without_id < 0.2, "exclusion must drop the id: {without_id}");
        // The frozen reference has no exclusion path at all — same high
        // estimate regardless of the caller's intent.
        let frozen = crate::reference::noise::label_noise_estimate(&t, "class", 2, 512);
        assert!(frozen > 0.5, "reference ignores exclusions: {frozen}");
    }

    #[test]
    fn majority_ties_are_not_disagreements() {
        // Triplets {0, 1, 2} on a line, labeled {a, a, b}, spaced far
        // apart so k=2 neighborhoods stay within a triplet. The two `a`
        // rows see one `a` and one `b` vote — a tie that includes their
        // own label — and only the `b` row truly disagrees (its
        // neighbors vote a:2). The reference's `max_by_key` resolves the
        // tie to the *last* tied label and scores every row noisy.
        let mut x = Vec::new();
        let mut label = Vec::new();
        for triplet in 0..2 {
            let base = triplet as f64 * 1000.0;
            x.extend([base, base + 1.0, base + 2.0]);
            label.extend(["a", "a", "b"]);
        }
        let t = Table::new(vec![
            Column::from_f64("x", x),
            Column::from_str_values("class", label),
        ])
        .unwrap();
        let live = label_noise_estimate(&t, "class", &[], 2, 512, SEED);
        let frozen = crate::reference::noise::label_noise_estimate(&t, "class", 2, 512);
        assert!((live - 1.0 / 3.0).abs() < 1e-12, "live was {live}");
        assert_eq!(frozen, 1.0, "reference counts every tied row as noisy");
    }

    #[test]
    fn sampling_sees_noise_beyond_the_row_cap() {
        // 1500 rows: the first 512 are clean, the rest have flipped
        // labels. The reference profiles only the clean prefix and
        // reports ~0; the seeded sample covers the whole table.
        let n = 1500usize;
        let x: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
        let label: Vec<&str> = (0..n)
            .map(|i| {
                let clean = (i % 100) < 50;
                if i < 512 {
                    if clean {
                        "a"
                    } else {
                        "b"
                    }
                } else if clean {
                    "b"
                } else {
                    "a"
                }
            })
            .collect();
        let t = Table::new(vec![
            Column::from_f64("x", x),
            Column::from_str_values("class", label),
        ])
        .unwrap();
        let frozen = crate::reference::noise::label_noise_estimate(&t, "class", 5, 512);
        let live = label_noise_estimate(&t, "class", &[], 5, 512, SEED);
        assert!(frozen < 0.05, "prefix-only estimate was {frozen}");
        assert!(live > 0.15, "sampled estimate was {live}");
        // The sample is seeded: the estimate is reproducible bit-for-bit.
        let again = label_noise_estimate(&t, "class", &[], 5, 512, SEED);
        assert_eq!(live.to_bits(), again.to_bits());
    }

    #[test]
    fn structured_attributes_scored_smoother_than_random() {
        // Structured: y = x (smooth manifold).
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let structured = Table::new(vec![
            Column::from_f64("x", xs.clone()),
            Column::from_f64("y", xs.clone()),
        ])
        .unwrap();
        // Noisy: y jumps around deterministically but incoherently.
        let noisy_y: Vec<f64> = (0..60).map(|i| ((i * 7919) % 61) as f64).collect();
        let noisy = Table::new(vec![
            Column::from_f64("x", xs),
            Column::from_f64("y", noisy_y),
        ])
        .unwrap();
        let s = attribute_noise_estimate(&structured, &[], 5, 512, SEED);
        let n = attribute_noise_estimate(&noisy, &[], 5, 512, SEED);
        assert!(s < n, "structured {s} should be below noisy {n}");
        assert!(s < 0.1, "structured roughness was {s}");
    }

    #[test]
    fn single_numeric_column_scores_zero() {
        let t = Table::new(vec![Column::from_f64("x", [1.0, 2.0, 3.0])]).unwrap();
        assert_eq!(attribute_noise_estimate(&t, &[], 3, 512, SEED), 0.0);
    }

    #[test]
    fn attribute_noise_matches_reference_bits_within_cap() {
        // Below the row cap and away from the fixed bugs the kernel
        // follows the reference's exact summation order.
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 1.7).sin() * 10.0).collect();
        let ys: Vec<f64> = (0..40).map(|i| ((i * 31) % 17) as f64).collect();
        let t = Table::new(vec![Column::from_f64("x", xs), Column::from_f64("y", ys)]).unwrap();
        let live = attribute_noise_estimate(&t, &[], 5, 512, SEED);
        let frozen = crate::reference::noise::attribute_noise_estimate(&t, &[], 5, 512);
        assert_eq!(live.to_bits(), frozen.to_bits());
    }

    #[test]
    fn zero_k_scores_zero() {
        let t = clean_table();
        assert_eq!(label_noise_estimate(&t, "class", &[], 0, 512, SEED), 0.0);
        assert_eq!(attribute_noise_estimate(&t, &[], 0, 512, SEED), 0.0);
    }
}
