//! Outlier detection over numeric columns (Tukey IQR fences and z-scores).
//!
//! The table-level ratio is a columnar kernel: each packed column's
//! present cells are gathered into one reused scratch buffer, sorted once
//! for the quartiles, and fence violations are counted directly — no
//! per-column index-vector materialization as in the reference.

use super::{pack_numeric, PackedColumn};
use openbi_table::{stats, Column, Table};

/// Row indices of cells outside the `k`×IQR fences of a numeric column.
pub fn iqr_outliers(column: &Column, k: f64) -> Vec<usize> {
    let values = column.to_f64_vec();
    let mut non_null: Vec<f64> = values.iter().flatten().copied().collect();
    if non_null.len() < 4 {
        return vec![];
    }
    non_null.sort_by(f64::total_cmp);
    let q1 = stats::quantile_sorted(&non_null, 0.25);
    let q3 = stats::quantile_sorted(&non_null, 0.75);
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            Some(x) if *x < lo || *x > hi => Some(i),
            _ => None,
        })
        .collect()
}

/// Row indices with |z-score| above `threshold` in a numeric column.
pub fn zscore_outliers(column: &Column, threshold: f64) -> Vec<usize> {
    let Some(mean) = stats::mean(column) else {
        return vec![];
    };
    let Some(std) = stats::std_dev(column) else {
        return vec![];
    };
    if std == 0.0 {
        return vec![];
    }
    column
        .to_f64_vec()
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            Some(x) if ((x - mean) / std).abs() > threshold => Some(i),
            _ => None,
        })
        .collect()
}

/// Fraction of numeric cells that are 1.5×IQR outliers, over the whole
/// table (excluding the named columns).
pub fn outlier_ratio(table: &Table, exclude: &[&str]) -> f64 {
    ratio_from_packed(&pack_numeric(table, exclude))
}

/// The outlier-ratio kernel over already-packed columns: one sort per
/// column into a reused scratch buffer, 1.5×IQR fences.
pub(crate) fn ratio_from_packed(packed: &[PackedColumn]) -> f64 {
    const K: f64 = 1.5;
    let mut outliers = 0usize;
    let mut cells = 0usize;
    let mut scratch: Vec<f64> = Vec::new();
    for col in packed {
        scratch.clear();
        scratch.extend(
            col.values
                .iter()
                .zip(&col.present)
                .filter(|(_, &p)| p)
                .map(|(&v, _)| v),
        );
        cells += scratch.len();
        if scratch.len() < 4 {
            continue;
        }
        scratch.sort_by(f64::total_cmp);
        let q1 = stats::quantile_sorted(&scratch, 0.25);
        let q3 = stats::quantile_sorted(&scratch, 0.75);
        let iqr = q3 - q1;
        let lo = q1 - K * iqr;
        let hi = q3 + K * iqr;
        // NaN cells compare false on both fences, exactly as in the
        // row-wise reference, so they count toward `cells` but never
        // toward `outliers`.
        outliers += scratch.iter().filter(|&&x| x < lo || x > hi).count();
    }
    if cells == 0 {
        0.0
    } else {
        outliers as f64 / cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iqr_flags_extreme_point() {
        let c = Column::from_f64("x", [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]);
        assert_eq!(iqr_outliers(&c, 1.5), vec![5]);
    }

    #[test]
    fn iqr_small_sample_returns_empty() {
        let c = Column::from_f64("x", [1.0, 100.0]);
        assert!(iqr_outliers(&c, 1.5).is_empty());
    }

    #[test]
    fn zscore_flags_extreme_point() {
        let mut vals = vec![0.0; 20];
        vals.push(1000.0);
        let c = Column::from_f64("x", vals);
        assert_eq!(zscore_outliers(&c, 3.0), vec![20]);
    }

    #[test]
    fn zscore_constant_column_empty() {
        let c = Column::from_f64("x", [5.0, 5.0, 5.0]);
        assert!(zscore_outliers(&c, 2.0).is_empty());
    }

    #[test]
    fn table_ratio_respects_exclusions() {
        let t = Table::new(vec![
            Column::from_f64("x", [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]),
            Column::from_f64("skip", [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]),
        ])
        .unwrap();
        let with = outlier_ratio(&t, &[]);
        let without = outlier_ratio(&t, &["skip"]);
        assert!((with - 2.0 / 12.0).abs() < 1e-12);
        assert!((without - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn nulls_are_ignored() {
        let c = Column::from_opt_f64(
            "x",
            [
                Some(1.0),
                Some(2.0),
                Some(3.0),
                Some(4.0),
                None,
                Some(100.0),
            ],
        );
        assert_eq!(iqr_outliers(&c, 1.5), vec![5]);
    }

    #[test]
    fn ratio_matches_reference_with_nan_cells() {
        let t = Table::new(vec![
            Column::from_opt_f64(
                "x",
                [
                    Some(1.0),
                    Some(2.0),
                    Some(f64::NAN),
                    Some(4.0),
                    None,
                    Some(100.0),
                ],
            ),
            Column::from_i64("i", [1, 2, 3, 4, 5, 6]),
        ])
        .unwrap();
        let live = outlier_ratio(&t, &[]);
        let frozen = crate::reference::outliers::outlier_ratio(&t, &[]);
        assert_eq!(live.to_bits(), frozen.to_bits());
    }
}
