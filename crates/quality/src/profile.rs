//! The [`QualityProfile`]: a fixed-dimensional summary of every data
//! quality criterion this system measures.
//!
//! A profile is what gets (a) annotated onto the common representation,
//! (b) stored in the DQ4DM knowledge base next to observed algorithm
//! performance, and (c) compared between a new dataset and past
//! experiments when advising a non-expert user.

use serde::{Deserialize, Serialize};

/// Measured values for every data-quality criterion (paper §3.1/§3.2.2).
///
/// All ratio-like fields live in `[0,1]`. Higher `completeness`,
/// `class_balance` and `consistency` are better; higher
/// `duplicate_ratio`, correlations, noise estimates, `outlier_ratio` and
/// `dimensionality` are worse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityProfile {
    /// Number of rows observed.
    pub n_rows: usize,
    /// Number of feature attributes observed.
    pub n_attributes: usize,
    /// Fraction of non-null cells (1 = fully complete).
    pub completeness: f64,
    /// Fraction of rows that exactly duplicate an earlier row.
    pub duplicate_ratio: f64,
    /// Maximum absolute Pearson correlation among numeric feature pairs.
    pub max_abs_correlation: f64,
    /// Mean absolute Pearson correlation among numeric feature pairs.
    pub mean_abs_correlation: f64,
    /// Normalized entropy of the class distribution (1 = perfectly
    /// balanced, 0 = single class). 1 when no target is designated.
    pub class_balance: f64,
    /// Ratio of the rarest to the most common class frequency.
    pub minority_ratio: f64,
    /// Attributes per row: `n_attributes / n_rows`, capped at 1.
    pub dimensionality: f64,
    /// Fraction of numeric cells outside the 1.5×IQR fences.
    pub outlier_ratio: f64,
    /// k-NN disagreement estimate of label noise (0 when no target).
    pub label_noise_estimate: f64,
    /// Local-roughness estimate of attribute noise.
    pub attr_noise_estimate: f64,
    /// Mean dominant-format share of string columns (1 = uniform formats).
    pub consistency: f64,
    /// Number of distinct classes (0 when no target).
    pub distinct_class_count: usize,
}

impl Default for QualityProfile {
    fn default() -> Self {
        QualityProfile {
            n_rows: 0,
            n_attributes: 0,
            completeness: 1.0,
            duplicate_ratio: 0.0,
            max_abs_correlation: 0.0,
            mean_abs_correlation: 0.0,
            class_balance: 1.0,
            minority_ratio: 1.0,
            dimensionality: 0.0,
            outlier_ratio: 0.0,
            label_noise_estimate: 0.0,
            attr_noise_estimate: 0.0,
            consistency: 1.0,
            distinct_class_count: 0,
        }
    }
}

/// Names of the vectorized dimensions, aligned with
/// [`QualityProfile::to_vector`].
pub const PROFILE_DIMENSIONS: [&str; 11] = [
    "completeness",
    "duplicate_ratio",
    "max_abs_correlation",
    "mean_abs_correlation",
    "class_balance",
    "minority_ratio",
    "dimensionality",
    "outlier_ratio",
    "label_noise_estimate",
    "attr_noise_estimate",
    "consistency",
];

impl QualityProfile {
    /// The profile as a fixed-order vector of its `[0,1]`-scaled criteria
    /// (sizes are deliberately excluded: similarity should reflect
    /// *quality*, not scale).
    pub fn to_vector(&self) -> [f64; 11] {
        [
            self.completeness,
            self.duplicate_ratio,
            self.max_abs_correlation,
            self.mean_abs_correlation,
            self.class_balance,
            self.minority_ratio,
            self.dimensionality,
            self.outlier_ratio,
            self.label_noise_estimate,
            self.attr_noise_estimate,
            self.consistency,
        ]
    }

    /// Euclidean distance between two profiles in criterion space.
    pub fn distance(&self, other: &QualityProfile) -> f64 {
        self.to_vector()
            .iter()
            .zip(other.to_vector().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// All criteria as `(name, value)` pairs — convenient for annotation
    /// and LOD publication.
    pub fn criteria(&self) -> Vec<(String, f64)> {
        PROFILE_DIMENSIONS
            .iter()
            .zip(self.to_vector().iter())
            .map(|(n, v)| (n.to_string(), *v))
            .collect()
    }

    /// A coarse human-readable verdict of the dominant quality problem,
    /// or `None` if the data looks clean.
    pub fn dominant_issue(&self) -> Option<(&'static str, f64)> {
        let issues: [(&'static str, f64); 7] = [
            ("incomplete data", 1.0 - self.completeness),
            ("duplicate records", self.duplicate_ratio),
            (
                "redundant correlated attributes",
                self.max_abs_correlation.max(0.0) - 0.8,
            ),
            ("class imbalance", 1.0 - self.minority_ratio),
            ("outliers", self.outlier_ratio * 2.0),
            ("label noise", self.label_noise_estimate),
            ("inconsistent value formats", 1.0 - self.consistency),
        ];
        issues
            .into_iter()
            .filter(|(_, severity)| *severity > 0.15)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let p = QualityProfile::default();
        assert_eq!(p.completeness, 1.0);
        assert_eq!(p.dominant_issue(), None);
    }

    #[test]
    fn vector_matches_dimension_names() {
        let p = QualityProfile::default();
        assert_eq!(p.to_vector().len(), PROFILE_DIMENSIONS.len());
        assert_eq!(p.criteria().len(), PROFILE_DIMENSIONS.len());
        assert_eq!(p.criteria()[0].0, "completeness");
    }

    #[test]
    fn distance_is_metric_like() {
        let a = QualityProfile::default();
        let mut b = a.clone();
        b.completeness = 0.5;
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn dominant_issue_picks_worst() {
        let mut p = QualityProfile {
            completeness: 0.6,   // severity 0.4
            minority_ratio: 0.9, // severity 0.1 (below threshold)
            ..Default::default()
        };
        assert_eq!(p.dominant_issue().unwrap().0, "incomplete data");
        p.label_noise_estimate = 0.7;
        assert_eq!(p.dominant_issue().unwrap().0, "label noise");
    }

    #[test]
    fn serde_round_trip() {
        let p = QualityProfile {
            n_rows: 10,
            completeness: 0.7,
            ..Default::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: QualityProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
