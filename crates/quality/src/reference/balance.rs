//! Frozen class-balance measurement (see [`super`] for the contract).

use openbi_table::{stats, Table};

/// Class-distribution summary of a target column (frozen copy of the
/// live `crate::measure::balance::BalanceReport`).
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Distinct class count.
    pub class_count: usize,
    /// Normalized entropy in `[0,1]` (1 = uniform, 0 = single class).
    pub normalized_entropy: f64,
    /// Rarest class frequency / most common class frequency.
    pub minority_ratio: f64,
    /// `(class label, count)` pairs, most common first.
    pub class_counts: Vec<(String, usize)>,
}

/// Measure class balance of `target`. Errors if the column is missing.
///
/// The `min(1.0)` clamp on normalized entropy is a shared baseline fix
/// (uniform distributions can overshoot 1.0 by an ulp); both this frozen
/// copy and the live kernel apply it identically.
pub fn balance_report(table: &Table, target: &str) -> openbi_table::Result<BalanceReport> {
    let col = table.column(target)?;
    let mut counts: Vec<(String, usize)> = stats::value_counts(col).into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let class_count = counts.len();
    let normalized_entropy = if class_count <= 1 {
        if class_count == 1 {
            0.0
        } else {
            1.0
        }
    } else {
        (stats::entropy(col) / (class_count as f64).log2()).min(1.0)
    };
    let minority_ratio = match (counts.last(), counts.first()) {
        (Some((_, min)), Some((_, max))) if *max > 0 => *min as f64 / *max as f64,
        _ => 1.0,
    };
    Ok(BalanceReport {
        class_count,
        normalized_entropy,
        minority_ratio,
        class_counts: counts,
    })
}
