//! Frozen completeness measurement (see [`super`] for the contract).

use openbi_table::Table;

/// Overall completeness of a table: non-null cells / total cells.
/// An empty table is trivially complete (1.0).
pub fn completeness(table: &Table) -> f64 {
    let total = table.n_rows() * table.n_cols();
    if total == 0 {
        return 1.0;
    }
    1.0 - table.total_null_count() as f64 / total as f64
}
