//! Frozen representational-consistency measurement (see [`super`]).
//!
//! Signature computation via an intermediate `Vec<Class>` of runs — the
//! live kernel builds the signature string directly with a last-class
//! state machine, producing identical output without the allocation.

use openbi_table::{Column, Table};
use std::collections::HashMap;

/// Reduce a string to a format signature: `a` = lowercase run, `A` =
/// uppercase run, `Aa` = capitalized run, `9` = digit run, other chars
/// verbatim, whitespace normalized to a single space.
pub fn format_signature(s: &str) -> String {
    #[derive(PartialEq, Clone, Copy)]
    enum Class {
        Lower,
        Upper,
        Capitalized,
        Digit,
        Space,
        Other(char),
    }
    let mut runs: Vec<Class> = Vec::new();
    for c in s.chars() {
        let class = if c.is_ascii_digit() {
            Class::Digit
        } else if c.is_lowercase() {
            Class::Lower
        } else if c.is_uppercase() {
            Class::Upper
        } else if c.is_whitespace() {
            Class::Space
        } else {
            Class::Other(c)
        };
        match (runs.last().copied(), class) {
            // An uppercase letter followed by lowercase = capitalized word.
            (Some(Class::Upper), Class::Lower) => {
                *runs.last_mut().expect("nonempty") = Class::Capitalized;
            }
            (Some(Class::Capitalized), Class::Lower)
            | (Some(Class::Lower), Class::Lower)
            | (Some(Class::Upper), Class::Upper)
            | (Some(Class::Digit), Class::Digit)
            | (Some(Class::Space), Class::Space) => {}
            (_, c) => runs.push(c),
        }
    }
    runs.iter()
        .map(|r| match r {
            Class::Lower => 'a',
            Class::Upper => 'A',
            Class::Capitalized => 'C',
            Class::Digit => '9',
            Class::Space => ' ',
            Class::Other(c) => *c,
        })
        .collect()
}

/// Share of the dominant format signature among non-null values of a
/// string column; 1.0 for empty or non-string columns.
pub fn column_consistency(column: &Column) -> f64 {
    let Some(values) = column.as_str_slice() else {
        return 1.0;
    };
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut total = 0usize;
    for v in values.iter().flatten() {
        *counts.entry(format_signature(v)).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return 1.0;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / total as f64
}

/// Mean consistency over string columns (excluding the named columns);
/// 1.0 if there are no string columns.
pub fn table_consistency(table: &Table, exclude: &[&str]) -> f64 {
    let scores: Vec<f64> = table
        .columns()
        .iter()
        .filter(|c| !exclude.contains(&c.name()) && c.as_str_slice().is_some())
        .map(column_consistency)
        .collect();
    if scores.is_empty() {
        1.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}
