//! Frozen correlation measurement (see [`super`] for the contract).
//!
//! Clones the non-excluded columns into a sub-table and runs per-pair
//! `stats::pearson` re-scans — each pair re-reads both columns end to
//! end. The live kernel computes identical bits with per-pair co-moment
//! accumulators over packed slices, without the clone or the re-scans.

use openbi_table::{stats, Table};

/// Redundancy summary over the numeric columns of a table (frozen copy
/// of the live `crate::measure::correlation::CorrelationReport`).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationReport {
    /// Maximum absolute pairwise Pearson correlation (0 if < 2 columns).
    pub max_abs: f64,
    /// Mean absolute pairwise Pearson correlation (0 if < 2 columns).
    pub mean_abs: f64,
    /// Pairs with |r| above the redundancy threshold, as
    /// `(col_a, col_b, r)`.
    pub redundant_pairs: Vec<(String, String, f64)>,
}

/// Compute the correlation report; `exclude` columns are skipped.
pub fn correlation_report(table: &Table, exclude: &[&str], threshold: f64) -> CorrelationReport {
    let keep: Vec<&str> = table
        .column_names()
        .into_iter()
        .filter(|n| !exclude.contains(n))
        .collect();
    let sub = table.select(&keep).expect("names from table");
    let (names, m) = stats::correlation_matrix(&sub);
    let n = names.len();
    let mut max_abs: f64 = 0.0;
    let mut sum_abs = 0.0;
    let mut count = 0usize;
    let mut redundant_pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let r = m[i][j];
            max_abs = max_abs.max(r.abs());
            sum_abs += r.abs();
            count += 1;
            if r.abs() >= threshold {
                redundant_pairs.push((names[i].clone(), names[j].clone(), r));
            }
        }
    }
    CorrelationReport {
        max_abs,
        mean_abs: if count == 0 {
            0.0
        } else {
            sum_abs / count as f64
        },
        redundant_pairs,
    }
}
