//! Frozen exact-duplicate measurement (see [`super`] for the contract).
//!
//! Allocates a `String` key per row via `Table::row_key`. The live
//! kernel hashes cells column-major into per-row `u64` fingerprints and
//! verifies candidate buckets by typed comparison — same equality
//! relation (all NaNs equal, `0.0` ≠ `-0.0`, null ≠ empty string), no
//! per-row allocation.

use openbi_table::Table;
use std::collections::HashMap;

/// Fraction of rows that exactly duplicate an earlier row.
pub fn exact_duplicate_ratio(table: &Table) -> f64 {
    if table.n_rows() == 0 {
        return 0.0;
    }
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut dups = 0usize;
    for i in 0..table.n_rows() {
        let key = table.row_key(i).expect("in-bounds");
        if seen.insert(key, i).is_some() {
            dups += 1;
        }
    }
    dups as f64 / table.n_rows() as f64
}
