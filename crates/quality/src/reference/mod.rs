//! Frozen pre-rewrite quality measurement — the equivalence baseline.
//!
//! This module is a faithful copy of `crate::measure` as it stood before
//! the columnar single-pass rewrite (the same row-wise, `Value`-boxed
//! code paths: per-pair `pearson` re-scans over cloned sub-tables,
//! per-row `String` keys for duplicate detection, full-sort kNN noise
//! estimators over the *first* `noise_max_rows` rows). It exists so
//! `tests/tests/quality_equivalence.rs` can prove the rewrite equivalent
//! — bitwise where the criterion is exact, and with pinned, documented
//! tolerances where an estimator legitimately changed — following the
//! same reference-equivalence convention as `openbi::mining::reference`
//! and `Advisor::advise_reference`.
//!
//! Two *shared* fixes land beneath both implementations and are therefore
//! part of the baseline, not a rewrite delta:
//!
//! * `openbi_table::stats::pearson` skips non-finite pairs (a NaN cell no
//!   longer poisons a whole coefficient), and
//! * `openbi_table::stats::entropy` sums per-class terms in sorted key
//!   order (bit-deterministic regardless of hasher state), plus the
//!   `normalized_entropy ≤ 1.0` clamp in [`balance::balance_report`].
//!
//! The live rewrite deliberately diverges from this reference in exactly
//! three documented ways (all in the noise estimators):
//!
//! 1. `label_noise_estimate` receives the full exclusion list, so ID
//!    columns no longer enter the kNN feature space (here they do);
//! 2. majority-vote ties never count a row as a disagreement when its own
//!    label is among the tied maxima (here `max_by_key` arbitrarily picks
//!    the last-inserted maximum);
//! 3. tables larger than `noise_max_rows` are sampled deterministically
//!    (here: the first `noise_max_rows` rows).
//!
//! Do not "improve" this module; its value is that it does not move.

pub mod balance;
pub mod completeness;
pub mod consistency;
pub mod correlation;
pub mod duplicates;
pub mod noise;
pub mod outliers;

use crate::measure::MeasureOptions;
use crate::profile::QualityProfile;
use openbi_table::Table;

/// Measure every quality criterion with the frozen pre-rewrite code.
///
/// Takes the same [`MeasureOptions`] as the live
/// [`crate::measure_profile`]; the `noise_seed` field is ignored because
/// this implementation never samples (it truncates to the first
/// `noise_max_rows` rows, as the original did).
pub fn measure_profile(table: &Table, options: &MeasureOptions) -> QualityProfile {
    let mut ex: Vec<&str> = options.exclude.iter().map(String::as_str).collect();
    if let Some(t) = &options.target {
        ex.push(t.as_str());
    }
    let n_attributes = table
        .column_names()
        .iter()
        .filter(|n| !ex.contains(n))
        .count();
    let corr = correlation::correlation_report(table, &ex, options.redundancy_threshold);
    let (class_balance, minority_ratio, distinct_class_count, label_noise) = match &options.target {
        Some(t) if table.has_column(t) => {
            let b = balance::balance_report(table, t).expect("column exists");
            let noise =
                noise::label_noise_estimate(table, t, options.noise_k, options.noise_max_rows);
            (b.normalized_entropy, b.minority_ratio, b.class_count, noise)
        }
        _ => (1.0, 1.0, 0, 0.0),
    };
    QualityProfile {
        n_rows: table.n_rows(),
        n_attributes,
        completeness: completeness::completeness(table),
        duplicate_ratio: duplicates::exact_duplicate_ratio(table),
        max_abs_correlation: corr.max_abs,
        mean_abs_correlation: corr.mean_abs,
        class_balance,
        minority_ratio,
        dimensionality: if table.n_rows() == 0 {
            1.0
        } else {
            (n_attributes as f64 / table.n_rows() as f64).min(1.0)
        },
        outlier_ratio: outliers::outlier_ratio(table, &ex),
        label_noise_estimate: label_noise,
        attr_noise_estimate: noise::attribute_noise_estimate(
            table,
            &ex,
            options.noise_k,
            options.noise_max_rows,
        ),
        consistency: consistency::table_consistency(table, &ex),
        distinct_class_count,
    }
}
