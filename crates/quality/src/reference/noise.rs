//! Frozen pre-rewrite noise estimators (see [`super`] for the contract).
//!
//! Full-sort kNN over a `Vec<Vec<f64>>` row matrix built from the *first*
//! `max_rows` rows. Label noise uses only the target as an exclusion and
//! `max_by_key` (last-maximum) tie-breaking — both were bugs, fixed in
//! the live `crate::measure::noise` and kept here verbatim so the fixes
//! stay visible as asserted behavior changes.

use openbi_table::{Table, Value};

/// Min-max normalized numeric feature matrix (rows × features); nulls
/// become column means (0.5 after normalization of an empty column).
fn feature_matrix(table: &Table, exclude: &[&str], max_rows: usize) -> Vec<Vec<f64>> {
    let n = table.n_rows().min(max_rows);
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for c in table.columns() {
        if exclude.contains(&c.name()) || !c.dtype().is_numeric() {
            continue;
        }
        let raw = c.to_f64_vec();
        let vals: Vec<f64> = raw.iter().take(n).flatten().copied().collect();
        if vals.is_empty() {
            continue;
        }
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = if hi > lo { hi - lo } else { 1.0 };
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let col: Vec<f64> = raw
            .iter()
            .take(n)
            .map(|v| (v.unwrap_or(mean) - lo) / span)
            .collect();
        cols.push(col);
    }
    (0..n)
        .map(|r| cols.iter().map(|c| c[r]).collect())
        .collect()
}

fn sq_dist(a: &[f64], b: &[f64], skip: Option<usize>) -> f64 {
    a.iter()
        .zip(b)
        .enumerate()
        .filter(|(i, _)| Some(*i) != skip)
        .map(|(_, (x, y))| (x - y) * (x - y))
        .sum()
}

fn k_nearest(matrix: &[Vec<f64>], row: usize, k: usize, skip_dim: Option<usize>) -> Vec<usize> {
    let mut dists: Vec<(usize, f64)> = (0..matrix.len())
        .filter(|&j| j != row)
        .map(|j| (j, sq_dist(&matrix[row], &matrix[j], skip_dim)))
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    dists.into_iter().take(k).map(|(j, _)| j).collect()
}

/// k-NN disagreement estimate of label noise; 0.0 when there is no
/// usable target or fewer than `k + 1` rows.
///
/// Frozen quirks (fixed in the live estimator): only the target column is
/// excluded from the feature space, and a tie for the neighborhood
/// majority resolves to the *last* tied label in insertion order.
pub fn label_noise_estimate(table: &Table, target: &str, k: usize, max_rows: usize) -> f64 {
    let Ok(target_col) = table.column(target) else {
        return 0.0;
    };
    let n = table.n_rows().min(max_rows);
    if n < k + 1 {
        return 0.0;
    }
    let labels: Vec<Option<String>> = (0..n)
        .map(|i| match target_col.get(i).expect("in-bounds") {
            Value::Null => None,
            v => Some(v.to_string()),
        })
        .collect();
    let matrix = feature_matrix(table, &[target], max_rows);
    if matrix.is_empty() || matrix[0].is_empty() {
        return 0.0;
    }
    let mut disagreements = 0usize;
    let mut counted = 0usize;
    for i in 0..n {
        let Some(label) = &labels[i] else { continue };
        let neighbors = k_nearest(&matrix, i, k, None);
        let mut votes: Vec<(String, usize)> = Vec::new();
        for &j in &neighbors {
            let Some(nl) = &labels[j] else { continue };
            if let Some(entry) = votes.iter_mut().find(|(l, _)| l == nl) {
                entry.1 += 1;
            } else {
                votes.push((nl.clone(), 1));
            }
        }
        let Some((majority, _)) = votes.iter().max_by_key(|(_, c)| *c) else {
            continue;
        };
        counted += 1;
        if majority != label {
            disagreements += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        disagreements as f64 / counted as f64
    }
}

/// Local-roughness estimate of attribute noise in `[0,1]`; 0.0 when the
/// table has fewer than two numeric attributes or too few rows.
pub fn attribute_noise_estimate(table: &Table, exclude: &[&str], k: usize, max_rows: usize) -> f64 {
    let matrix = feature_matrix(table, exclude, max_rows);
    let n = matrix.len();
    if n < k + 1 {
        return 0.0;
    }
    let dims = matrix[0].len();
    if dims < 2 {
        return 0.0;
    }
    let mut ratios: Vec<f64> = Vec::with_capacity(dims);
    for d in 0..dims {
        let global_mean = matrix.iter().map(|r| r[d]).sum::<f64>() / n as f64;
        let global_var = matrix
            .iter()
            .map(|r| (r[d] - global_mean) * (r[d] - global_mean))
            .sum::<f64>()
            / n as f64;
        if global_var < 1e-12 {
            continue;
        }
        let mut local_var_sum = 0.0;
        for i in 0..n {
            let neighbors = k_nearest(&matrix, i, k, Some(d));
            let vals: Vec<f64> = neighbors
                .iter()
                .map(|&j| matrix[j][d])
                .chain(std::iter::once(matrix[i][d]))
                .collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            local_var_sum +=
                vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64;
        }
        let local_var = local_var_sum / n as f64;
        ratios.push((local_var / global_var).min(1.0));
    }
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}
