//! Frozen outlier-ratio measurement (see [`super`] for the contract).
//!
//! Materializes the per-column outlier index list just to count it; the
//! live kernel sorts once per column into a reused scratch buffer and
//! counts fence violations directly.

use openbi_table::{stats, Column, Table};

/// Row indices of cells outside the `k`×IQR fences of a numeric column.
pub fn iqr_outliers(column: &Column, k: f64) -> Vec<usize> {
    let values = column.to_f64_vec();
    let mut non_null: Vec<f64> = values.iter().flatten().copied().collect();
    if non_null.len() < 4 {
        return vec![];
    }
    non_null.sort_by(f64::total_cmp);
    let q1 = stats::quantile_sorted(&non_null, 0.25);
    let q3 = stats::quantile_sorted(&non_null, 0.75);
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            Some(x) if *x < lo || *x > hi => Some(i),
            _ => None,
        })
        .collect()
}

/// Fraction of numeric cells that are 1.5×IQR outliers, over the whole
/// table (excluding the named columns).
pub fn outlier_ratio(table: &Table, exclude: &[&str]) -> f64 {
    let mut outliers = 0usize;
    let mut cells = 0usize;
    for c in table.columns() {
        if exclude.contains(&c.name()) || !c.dtype().is_numeric() {
            continue;
        }
        outliers += iqr_outliers(c, 1.5).len();
        cells += c.len() - c.null_count();
    }
    if cells == 0 {
        0.0
    } else {
        outliers as f64 / cells as f64
    }
}
