//! Human-readable rendering of quality profiles — the "report to the
//! user" half of user-friendly preprocessing (Kriegel et al. \[11\]).

use crate::profile::QualityProfile;
use std::fmt::Write as _;

fn bar(value: f64, width: usize) -> String {
    let filled = (value.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Render a profile as an aligned text report with 20-char bars.
pub fn render_profile(name: &str, profile: &QualityProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Data quality report: {name}");
    let _ = writeln!(
        out,
        "  rows: {}   attributes: {}   classes: {}",
        profile.n_rows, profile.n_attributes, profile.distinct_class_count
    );
    for (criterion, value) in profile.criteria() {
        let _ = writeln!(out, "  {criterion:<22} {} {value:.3}", bar(value, 20));
    }
    if let Some((issue, severity)) = profile.dominant_issue() {
        let _ = writeln!(out, "  dominant issue: {issue} (severity {severity:.2})");
    } else {
        let _ = writeln!(out, "  no dominant quality issue detected");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_criteria() {
        let p = QualityProfile {
            n_rows: 5,
            completeness: 0.5,
            ..Default::default()
        };
        let r = render_profile("test", &p);
        assert!(r.contains("completeness"));
        assert!(r.contains("consistency"));
        assert!(r.contains("dominant issue: incomplete data"));
    }

    #[test]
    fn clean_profile_reports_no_issue() {
        let r = render_profile("clean", &QualityProfile::default());
        assert!(r.contains("no dominant quality issue"));
    }

    #[test]
    fn bars_have_fixed_width() {
        assert_eq!(bar(0.5, 20).len(), 20);
        assert_eq!(bar(0.0, 20), ".".repeat(20));
        assert_eq!(bar(1.0, 20), "#".repeat(20));
        assert_eq!(bar(2.0, 20), "#".repeat(20));
    }
}
