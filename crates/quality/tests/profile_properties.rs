//! Property tests: every ratio field of a [`QualityProfile`] is finite
//! and in `[0, 1]` no matter how adversarial the table — all-null
//! columns, constant columns, NaN and ±∞ cells, zero rows, a single row,
//! missing or degenerate targets — and for **both** the live columnar
//! kernels and the frozen `reference` implementation (the invariant is
//! part of the equivalence contract, not a rewrite artifact).

use openbi_quality::{measure_profile, reference, MeasureOptions, QualityProfile};
use openbi_table::{Column, Table};
use proptest::prelude::*;

/// Every profile field that is a ratio/score bounded to the unit
/// interval, by name.
fn ratio_fields(p: &QualityProfile) -> [(&'static str, f64); 11] {
    [
        ("completeness", p.completeness),
        ("duplicate_ratio", p.duplicate_ratio),
        ("max_abs_correlation", p.max_abs_correlation),
        ("mean_abs_correlation", p.mean_abs_correlation),
        ("class_balance", p.class_balance),
        ("minority_ratio", p.minority_ratio),
        ("dimensionality", p.dimensionality),
        ("outlier_ratio", p.outlier_ratio),
        ("label_noise_estimate", p.label_noise_estimate),
        ("attr_noise_estimate", p.attr_noise_estimate),
        ("consistency", p.consistency),
    ]
}

fn assert_profile_in_unit_range(p: &QualityProfile, ctx: &str) {
    for (name, v) in ratio_fields(p) {
        assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "{ctx}: {name} must be finite and in [0,1], got {v}"
        );
    }
}

fn check_both(table: &Table, options: &MeasureOptions, ctx: &str) {
    assert_profile_in_unit_range(&measure_profile(table, options), &format!("live/{ctx}"));
    assert_profile_in_unit_range(
        &reference::measure_profile(table, options),
        &format!("reference/{ctx}"),
    );
}

/// One adversarial cell: nulls, NaN, infinities, signed zeros, and
/// ordinary values all appear.
fn cell() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        3 => prop::num::f64::NORMAL.prop_map(Some),
        1 => Just(None),
        1 => Just(Some(f64::NAN)),
        1 => Just(Some(f64::INFINITY)),
        1 => Just(Some(f64::NEG_INFINITY)),
        1 => Just(Some(0.0)),
        1 => Just(Some(-0.0)),
        1 => (-5i64..5).prop_map(|i| Some(i as f64)),
    ]
}

fn label() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        4 => prop::sample::select(vec!["a", "b", "c"]).prop_map(|s| Some(s.to_string())),
        1 => Just(None),
        1 => Just(Some(String::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mixed tables: numeric columns full of NaN/∞/null traps,
    /// a string label column with nulls and empties.
    #[test]
    fn random_adversarial_tables_stay_in_range(
        n_rows in 0usize..14,
        n_cols in 1usize..5,
        cells in prop::collection::vec(cell(), 0..70),
        labels in prop::collection::vec(label(), 0..14),
        with_target in any::<bool>(),
    ) {
        let mut columns = Vec::new();
        for c in 0..n_cols {
            let col: Vec<Option<f64>> = (0..n_rows)
                .map(|r| cells.get(c * n_rows + r).copied().flatten())
                .collect();
            columns.push(Column::from_opt_f64(format!("f{c}"), col));
        }
        let class: Vec<Option<String>> = (0..n_rows)
            .map(|r| labels.get(r).cloned().flatten())
            .collect();
        columns.push(Column::from_opt_str("class", class));
        let table = Table::new(columns).unwrap();
        let options = if with_target {
            MeasureOptions::with_target("class")
        } else {
            MeasureOptions::default()
        };
        check_both(&table, &options, "random");
    }
}

#[test]
fn named_edge_cases_stay_in_range() {
    let nan_col = |n: usize| vec![Some(f64::NAN); n];
    let cases: Vec<(&str, Table)> = vec![
        (
            "zero-row",
            Table::new(vec![
                Column::from_f64("x", Vec::<f64>::new()),
                Column::from_str_values("class", Vec::<&str>::new()),
            ])
            .unwrap(),
        ),
        (
            "single-row",
            Table::new(vec![
                Column::from_f64("x", [1.0]),
                Column::from_str_values("class", ["a"]),
            ])
            .unwrap(),
        ),
        (
            "all-null",
            Table::new(vec![
                Column::from_opt_f64("x", vec![None; 6]),
                Column::from_opt_i64("y", vec![None; 6]),
                Column::from_opt_str("class", vec![None::<String>; 6]),
            ])
            .unwrap(),
        ),
        (
            "constant",
            Table::new(vec![
                Column::from_f64("x", vec![3.0; 8]),
                Column::from_i64("y", vec![7; 8]),
                Column::from_str_values("class", vec!["a"; 8]),
            ])
            .unwrap(),
        ),
        (
            "all-nan",
            Table::new(vec![
                Column::from_opt_f64("x", nan_col(8)),
                Column::from_opt_f64("y", nan_col(8)),
                Column::from_str_values("class", ["a", "b", "a", "b", "a", "b", "a", "b"]),
            ])
            .unwrap(),
        ),
        (
            "mixed-inf",
            Table::new(vec![
                Column::from_f64("x", [f64::INFINITY, f64::NEG_INFINITY, 1.0, 2.0, 3.0, 4.0]),
                Column::from_f64("y", [1.0, 2.0, f64::NAN, 4.0, 5.0, 6.0]),
                Column::from_str_values("class", ["a", "b", "a", "b", "a", "b"]),
            ])
            .unwrap(),
        ),
    ];
    for (name, table) in cases {
        check_both(&table, &MeasureOptions::with_target("class"), name);
        check_both(&table, &MeasureOptions::default(), name);
        check_both(
            &table,
            &MeasureOptions {
                target: Some("class".into()),
                exclude: vec!["x".into()],
                ..Default::default()
            },
            name,
        );
    }
}
