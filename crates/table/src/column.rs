//! Typed, nullable columns.
//!
//! A [`Column`] is a named, homogeneously typed vector of optional values.
//! The concrete storage is one of four typed vectors ([`ColumnData`]), so
//! numeric scans do not pay an enum-per-cell cost.

use crate::error::{Result, TableError};
use crate::value::{DataType, Value};

/// Typed storage for a column. Every slot is optional; `None` is a null.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Integer storage.
    Int(Vec<Option<i64>>),
    /// Float storage.
    Float(Vec<Option<f64>>),
    /// String storage.
    Str(Vec<Option<String>>),
    /// Boolean storage.
    Bool(Vec<Option<bool>>),
}

impl ColumnData {
    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The data type of the storage.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }
}

/// A named, typed, nullable column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Create a column from typed storage.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Create an integer column from values (no nulls).
    pub fn from_i64(name: impl Into<String>, values: impl IntoIterator<Item = i64>) -> Self {
        Column::new(
            name,
            ColumnData::Int(values.into_iter().map(Some).collect()),
        )
    }

    /// Create an integer column from optional values.
    pub fn from_opt_i64(
        name: impl Into<String>,
        values: impl IntoIterator<Item = Option<i64>>,
    ) -> Self {
        Column::new(name, ColumnData::Int(values.into_iter().collect()))
    }

    /// Create a float column from values (no nulls).
    pub fn from_f64(name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        Column::new(
            name,
            ColumnData::Float(values.into_iter().map(Some).collect()),
        )
    }

    /// Create a float column from optional values.
    pub fn from_opt_f64(
        name: impl Into<String>,
        values: impl IntoIterator<Item = Option<f64>>,
    ) -> Self {
        Column::new(name, ColumnData::Float(values.into_iter().collect()))
    }

    /// Create a string column from values (no nulls).
    pub fn from_str_values<S: Into<String>>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        Column::new(
            name,
            ColumnData::Str(values.into_iter().map(|s| Some(s.into())).collect()),
        )
    }

    /// Create a string column from optional values.
    pub fn from_opt_str(
        name: impl Into<String>,
        values: impl IntoIterator<Item = Option<String>>,
    ) -> Self {
        Column::new(name, ColumnData::Str(values.into_iter().collect()))
    }

    /// Create a bool column from values (no nulls).
    pub fn from_bool(name: impl Into<String>, values: impl IntoIterator<Item = bool>) -> Self {
        Column::new(
            name,
            ColumnData::Bool(values.into_iter().map(Some).collect()),
        )
    }

    /// Build a column of the given type from dynamically typed values.
    /// Values that do not fit the type are an error; nulls are preserved.
    pub fn from_values(
        name: impl Into<String>,
        dtype: DataType,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<Self> {
        let name = name.into();
        let data = match dtype {
            DataType::Int => {
                let mut out = Vec::new();
                for v in values {
                    match v {
                        Value::Null => out.push(None),
                        Value::Int(i) => out.push(Some(i)),
                        other => {
                            return Err(TableError::TypeMismatch {
                                column: name,
                                expected: DataType::Int,
                                actual: other.dtype().unwrap_or(DataType::Int),
                            })
                        }
                    }
                }
                ColumnData::Int(out)
            }
            DataType::Float => {
                let mut out = Vec::new();
                for v in values {
                    match v {
                        Value::Null => out.push(None),
                        Value::Float(f) => out.push(Some(f)),
                        Value::Int(i) => out.push(Some(i as f64)),
                        other => {
                            return Err(TableError::TypeMismatch {
                                column: name,
                                expected: DataType::Float,
                                actual: other.dtype().unwrap_or(DataType::Float),
                            })
                        }
                    }
                }
                ColumnData::Float(out)
            }
            DataType::Str => {
                let mut out = Vec::new();
                for v in values {
                    match v {
                        Value::Null => out.push(None),
                        Value::Str(s) => out.push(Some(s)),
                        other => out.push(Some(other.to_string())),
                    }
                }
                ColumnData::Str(out)
            }
            DataType::Bool => {
                let mut out = Vec::new();
                for v in values {
                    match v {
                        Value::Null => out.push(None),
                        Value::Bool(b) => out.push(Some(b)),
                        other => {
                            return Err(TableError::TypeMismatch {
                                column: name,
                                expected: DataType::Bool,
                                actual: other.dtype().unwrap_or(DataType::Bool),
                            })
                        }
                    }
                }
                ColumnData::Bool(out)
            }
        };
        Ok(Column { name, data })
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the column.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    /// Borrow the typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Mutably borrow the typed storage.
    pub fn data_mut(&mut self) -> &mut ColumnData {
        &mut self.data
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of null slots.
    pub fn null_count(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Get the cell at `row` as a dynamically typed [`Value`].
    pub fn get(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(TableError::RowOutOfBounds {
                row,
                len: self.len(),
            });
        }
        Ok(match &self.data {
            ColumnData::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            ColumnData::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            ColumnData::Str(v) => v[row]
                .as_ref()
                .map(|s| Value::Str(s.clone()))
                .unwrap_or(Value::Null),
            ColumnData::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
        })
    }

    /// Set the cell at `row`. The value must match the column type (or be
    /// null); ints may be written into float columns.
    pub fn set(&mut self, row: usize, value: Value) -> Result<()> {
        let len = self.len();
        if row >= len {
            return Err(TableError::RowOutOfBounds { row, len });
        }
        let mismatch = |actual: DataType, expected: DataType, column: &str| {
            Err(TableError::TypeMismatch {
                column: column.to_string(),
                expected,
                actual,
            })
        };
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Int(i)) => v[row] = Some(i),
            (ColumnData::Int(v), Value::Null) => v[row] = None,
            (ColumnData::Float(v), Value::Float(f)) => v[row] = Some(f),
            (ColumnData::Float(v), Value::Int(i)) => v[row] = Some(i as f64),
            (ColumnData::Float(v), Value::Null) => v[row] = None,
            (ColumnData::Str(v), Value::Str(s)) => v[row] = Some(s),
            (ColumnData::Str(v), Value::Null) => v[row] = None,
            (ColumnData::Bool(v), Value::Bool(b)) => v[row] = Some(b),
            (ColumnData::Bool(v), Value::Null) => v[row] = None,
            (data, value) => {
                let expected = data.dtype();
                let actual = value.dtype().unwrap_or(expected);
                let name = self.name.clone();
                return mismatch(actual, expected, &name);
            }
        }
        Ok(())
    }

    /// Push a value onto the column (same typing rules as [`Column::set`]).
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Int(i)) => v.push(Some(i)),
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Float(v), Value::Float(f)) => v.push(Some(f)),
            (ColumnData::Float(v), Value::Int(i)) => v.push(Some(i as f64)),
            (ColumnData::Float(v), Value::Null) => v.push(None),
            (ColumnData::Str(v), Value::Str(s)) => v.push(Some(s)),
            (ColumnData::Str(v), Value::Null) => v.push(None),
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(Some(b)),
            (ColumnData::Bool(v), Value::Null) => v.push(None),
            (data, value) => {
                return Err(TableError::TypeMismatch {
                    column: self.name.clone(),
                    expected: data.dtype(),
                    actual: value.dtype().unwrap_or(data.dtype()),
                })
            }
        }
        Ok(())
    }

    /// Iterate over cells as dynamically typed values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("in-bounds"))
    }

    /// Numeric view of the column: each cell as `Option<f64>`.
    /// Strings yield `None`.
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        match &self.data {
            ColumnData::Int(v) => v.iter().map(|x| x.map(|i| i as f64)).collect(),
            ColumnData::Float(v) => v.clone(),
            ColumnData::Bool(v) => v
                .iter()
                .map(|x| x.map(|b| if b { 1.0 } else { 0.0 }))
                .collect(),
            ColumnData::Str(v) => v.iter().map(|_| None).collect(),
        }
    }

    /// Borrow float storage, if this is a float column.
    pub fn as_f64_slice(&self) -> Option<&[Option<f64>]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow string storage, if this is a string column.
    pub fn as_str_slice(&self) -> Option<&[Option<String>]> {
        match &self.data {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Cast the column to another data type. Lossy casts (e.g. non-numeric
    /// strings to float) turn unparsable cells into nulls.
    pub fn cast(&self, dtype: DataType) -> Column {
        if dtype == self.dtype() {
            return self.clone();
        }
        let values: Vec<Value> = self
            .iter()
            .map(|v| match (dtype, v) {
                (_, Value::Null) => Value::Null,
                (DataType::Float, Value::Str(s)) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .unwrap_or(Value::Null),
                (DataType::Int, Value::Str(s)) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .unwrap_or(Value::Null),
                (DataType::Float, v) => v.as_f64().map(Value::Float).unwrap_or(Value::Null),
                (DataType::Int, v) => v.as_i64().map(Value::Int).unwrap_or(Value::Null),
                (DataType::Str, v) => Value::Str(v.to_string()),
                (DataType::Bool, Value::Bool(b)) => Value::Bool(b),
                (DataType::Bool, Value::Int(i)) => Value::Bool(i != 0),
                (DataType::Bool, Value::Str(s)) => match s.to_ascii_lowercase().as_str() {
                    "true" | "1" | "yes" => Value::Bool(true),
                    "false" | "0" | "no" => Value::Bool(false),
                    _ => Value::Null,
                },
                (DataType::Bool, _) => Value::Null,
            })
            .collect();
        Column::from_values(self.name.clone(), dtype, values).expect("cast produces typed values")
    }

    /// Gather the rows at `indices` into a new column (indices may repeat).
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        let len = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(TableError::RowOutOfBounds { row: bad, len });
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
        };
        Ok(Column::new(self.name.clone(), data))
    }

    /// Append all rows from `other` (must be the same dtype).
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        if other.dtype() != self.dtype() {
            return Err(TableError::TypeMismatch {
                column: self.name.clone(),
                expected: self.dtype(),
                actual: other.dtype(),
            });
        }
        match (&mut self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend(b.iter().cloned()),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            _ => unreachable!("dtype checked above"),
        }
        Ok(())
    }

    /// Distinct non-null values, in first-seen order.
    pub fn distinct(&self) -> Vec<Value> {
        let mut seen: Vec<Value> = Vec::new();
        for v in self.iter() {
            if v.is_null() {
                continue;
            }
            if !seen.iter().any(|s| s == &v) {
                seen.push(v);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        let c = Column::from_i64("a", [1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.null_count(), 0);

        let c = Column::from_opt_f64("b", [Some(1.0), None]);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn get_and_set() {
        let mut c = Column::from_f64("x", [1.0, 2.0]);
        assert_eq!(c.get(1).unwrap(), Value::Float(2.0));
        c.set(0, Value::Null).unwrap();
        assert!(c.get(0).unwrap().is_null());
        c.set(0, Value::Int(7)).unwrap(); // int into float is fine
        assert_eq!(c.get(0).unwrap(), Value::Float(7.0));
        assert!(c.set(0, Value::Str("no".into())).is_err());
        assert!(c.set(9, Value::Float(0.0)).is_err());
    }

    #[test]
    fn push_type_checked() {
        let mut c = Column::from_str_values("s", ["a"]);
        c.push(Value::Str("b".into())).unwrap();
        c.push(Value::Null).unwrap();
        assert!(c.push(Value::Int(1)).is_err());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn cast_str_to_float_lossy() {
        let c = Column::from_str_values("s", ["1.5", "x", "3"]);
        let f = c.cast(DataType::Float);
        assert_eq!(f.dtype(), DataType::Float);
        assert_eq!(f.get(0).unwrap(), Value::Float(1.5));
        assert!(f.get(1).unwrap().is_null());
        assert_eq!(f.get(2).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn cast_int_to_str() {
        let c = Column::from_i64("i", [1, 2]);
        let s = c.cast(DataType::Str);
        assert_eq!(s.get(0).unwrap(), Value::Str("1".into()));
    }

    #[test]
    fn take_gathers_and_bounds_checks() {
        let c = Column::from_i64("a", [10, 20, 30]);
        let t = c.take(&[2, 0, 2]).unwrap();
        assert_eq!(t.get(0).unwrap(), Value::Int(30));
        assert_eq!(t.get(1).unwrap(), Value::Int(10));
        assert_eq!(t.len(), 3);
        assert!(c.take(&[3]).is_err());
    }

    #[test]
    fn extend_from_checks_dtype() {
        let mut a = Column::from_i64("a", [1]);
        let b = Column::from_i64("a", [2, 3]);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 3);
        let f = Column::from_f64("a", [1.0]);
        assert!(a.extend_from(&f).is_err());
    }

    #[test]
    fn distinct_preserves_order_skips_null() {
        let c = Column::from_opt_str(
            "s",
            [
                Some("b".to_string()),
                None,
                Some("a".to_string()),
                Some("b".to_string()),
            ],
        );
        let d = c.distinct();
        assert_eq!(d, vec![Value::Str("b".into()), Value::Str("a".into())]);
    }

    #[test]
    fn to_f64_vec_handles_types() {
        let c = Column::from_bool("b", [true, false]);
        assert_eq!(c.to_f64_vec(), vec![Some(1.0), Some(0.0)]);
        let s = Column::from_str_values("s", ["x"]);
        assert_eq!(s.to_f64_vec(), vec![None]);
    }
}
