//! CSV reading and writing.
//!
//! A small, dependency-free RFC-4180-style reader with type inference —
//! this is the "raw open data in CSV" ingestion path the paper's
//! introduction motivates. Quoted fields, embedded delimiters, embedded
//! quotes (`""`) and embedded newlines are supported.

use crate::column::Column;
use crate::error::{Result, TableError};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::fmt::Write as _;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header (default true).
    pub has_header: bool,
    /// When false, every column is read as a string column.
    pub infer_types: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            infer_types: true,
        }
    }
}

/// Split CSV text into records of raw string fields.
fn parse_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(ch) = chars.next() {
        saw_any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                c => field.push(c),
            }
        } else {
            match ch {
                '"' => {
                    if !field.is_empty() {
                        return Err(TableError::CsvParse {
                            line,
                            message: "unexpected quote inside unquoted field".to_string(),
                        });
                    }
                    in_quotes = true;
                }
                '\r' => { /* tolerate CRLF */ }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    // Skip completely empty trailing lines.
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(std::mem::take(&mut record));
                    } else {
                        record.clear();
                    }
                }
                c if c == delimiter => record.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TableError::CsvParse {
            line,
            message: "unterminated quoted field".to_string(),
        });
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        if !(record.len() == 1 && record[0].is_empty()) {
            records.push(record);
        }
    }
    Ok(records)
}

/// Infer the narrowest common column type for a set of raw tokens.
fn infer_dtype(tokens: &[&str]) -> DataType {
    let mut seen_any = false;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    for t in tokens {
        let v = Value::infer_from_str(t);
        match v {
            Value::Null => continue,
            Value::Int(_) => {
                seen_any = true;
                all_bool = false;
            }
            Value::Float(_) => {
                seen_any = true;
                all_int = false;
                all_bool = false;
            }
            Value::Bool(_) => {
                seen_any = true;
                all_int = false;
                all_float = false;
            }
            Value::Str(_) => return DataType::Str,
        }
    }
    if !seen_any {
        return DataType::Str;
    }
    if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else {
        DataType::Str
    }
}

/// Parse CSV text into a [`Table`].
pub fn read_csv_str(text: &str, options: &CsvOptions) -> Result<Table> {
    let records = parse_records(text, options.delimiter)?;
    if records.is_empty() {
        return Ok(Table::empty());
    }
    let (header, body): (Vec<String>, &[Vec<String>]) = if options.has_header {
        (records[0].clone(), &records[1..])
    } else {
        (
            (0..records[0].len()).map(|i| format!("c{i}")).collect(),
            &records[..],
        )
    };
    let ncols = header.len();
    for (i, rec) in body.iter().enumerate() {
        if rec.len() != ncols {
            return Err(TableError::CsvParse {
                line: i + if options.has_header { 2 } else { 1 },
                message: format!("expected {ncols} fields, found {}", rec.len()),
            });
        }
    }
    let mut columns = Vec::with_capacity(ncols);
    for (ci, name) in header.iter().enumerate() {
        let tokens: Vec<&str> = body.iter().map(|r| r[ci].as_str()).collect();
        let dtype = if options.infer_types {
            infer_dtype(&tokens)
        } else {
            DataType::Str
        };
        let values: Vec<Value> = tokens
            .iter()
            .map(|t| {
                if options.infer_types {
                    let v = Value::infer_from_str(t);
                    match (dtype, v) {
                        (DataType::Str, Value::Null) => Value::Null,
                        // A column inferred Str keeps raw tokens verbatim.
                        (DataType::Str, _) => Value::Str((*t).to_string()),
                        (_, v) => v,
                    }
                } else if t.is_empty() {
                    Value::Null
                } else {
                    Value::Str((*t).to_string())
                }
            })
            .collect();
        columns.push(Column::from_values(name.clone(), dtype, values)?);
    }
    Table::new(columns)
}

/// Read a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<std::path::Path>, options: &CsvOptions) -> Result<Table> {
    let text = std::fs::read_to_string(path)?;
    read_csv_str(&text, options)
}

fn escape_field(s: &str, delimiter: char) -> String {
    if s.contains(delimiter) || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize a table to CSV text (with a header row).
pub fn write_csv_str(table: &Table, delimiter: char) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .column_names()
        .iter()
        .map(|n| escape_field(n, delimiter))
        .collect();
    let _ = writeln!(out, "{}", header.join(&delimiter.to_string()));
    for row in table.iter_rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| escape_field(&v.to_string(), delimiter))
            .collect();
        let _ = writeln!(out, "{}", fields.join(&delimiter.to_string()));
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv_path(table: &Table, path: impl AsRef<std::path::Path>) -> Result<()> {
    std::fs::write(path, write_csv_str(table, ','))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv_with_inference() {
        let t = read_csv_str("a,b,c\n1,2.5,x\n2,3.5,y\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column("a").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("b").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("c").unwrap().dtype(), DataType::Str);
    }

    #[test]
    fn mixed_int_float_becomes_float() {
        let t = read_csv_str("x\n1\n2.5\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Float);
        assert_eq!(t.get("x", 0).unwrap(), Value::Float(1.0));
    }

    #[test]
    fn empty_and_na_become_null() {
        let t = read_csv_str("x,y\n1,\n,b\nNA,c\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.column("x").unwrap().null_count(), 2);
        assert_eq!(t.column("y").unwrap().null_count(), 1);
    }

    #[test]
    fn quoted_fields_with_delimiter_and_newline() {
        let t = read_csv_str(
            "name,notes\nalice,\"hello, world\"\nbob,\"line1\nline2\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(
            t.get("notes", 0).unwrap(),
            Value::Str("hello, world".into())
        );
        assert_eq!(
            t.get("notes", 1).unwrap(),
            Value::Str("line1\nline2".into())
        );
    }

    #[test]
    fn escaped_quotes_round_trip() {
        let t = read_csv_str("s\n\"he said \"\"hi\"\"\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.get("s", 0).unwrap(), Value::Str("he said \"hi\"".into()));
        let text = write_csv_str(&t, ',');
        let t2 = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn crlf_tolerated() {
        let t = read_csv_str("a,b\r\n1,2\r\n3,4\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.get("b", 1).unwrap(), Value::Int(4));
    }

    #[test]
    fn ragged_row_is_error_with_line_number() {
        let err = read_csv_str("a,b\n1,2\n3\n", &CsvOptions::default()).unwrap_err();
        match err {
            TableError::CsvParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(read_csv_str("a\n\"oops\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..Default::default()
        };
        let t = read_csv_str("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.column_names(), vec!["c0", "c1"]);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn no_inference_keeps_strings() {
        let opts = CsvOptions {
            infer_types: false,
            ..Default::default()
        };
        let t = read_csv_str("x\n1\n", &opts).unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Str);
    }

    #[test]
    fn custom_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..Default::default()
        };
        let t = read_csv_str("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(t.get("b", 0).unwrap(), Value::Int(2));
    }

    #[test]
    fn round_trip_preserves_values() {
        let t = read_csv_str("a,b,c\n1,2.5,foo\n2,,\n", &CsvOptions::default()).unwrap();
        let text = write_csv_str(&t, ',');
        let t2 = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(t.n_rows(), t2.n_rows());
        assert_eq!(t.get("b", 1).unwrap(), t2.get("b", 1).unwrap());
    }

    #[test]
    fn bool_column_inferred() {
        let t = read_csv_str("f\ntrue\nfalse\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.column("f").unwrap().dtype(), DataType::Bool);
    }

    #[test]
    fn empty_input_gives_empty_table() {
        let t = read_csv_str("", &CsvOptions::default()).unwrap();
        assert_eq!(t.n_cols(), 0);
        assert_eq!(t.n_rows(), 0);
    }
}
