//! Error type for the table substrate.

use std::fmt;

/// Errors produced by table construction, access, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A column with the given name does not exist.
    ColumnNotFound(String),
    /// A column with the given name already exists.
    DuplicateColumn(String),
    /// Columns in a table must all have the same length.
    LengthMismatch {
        /// Column whose length differs.
        column: String,
        /// Expected length (that of the first column).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows.
        len: usize,
    },
    /// A value could not be converted to the requested type.
    TypeMismatch {
        /// Name of the column involved.
        column: String,
        /// Expected data type.
        expected: crate::value::DataType,
        /// Actual data type.
        actual: crate::value::DataType,
    },
    /// CSV input could not be parsed.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error, carried as a string to keep the error type `Clone`.
    Io(String),
    /// The operation is not valid for an empty table.
    EmptyTable,
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            TableError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column {column} has length {actual}, expected {expected}"
            ),
            TableError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for table of {len} rows")
            }
            TableError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column {column}: expected type {expected}, found {actual}"
            ),
            TableError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            TableError::Io(msg) => write!(f, "I/O error: {msg}"),
            TableError::EmptyTable => write!(f, "operation not valid on an empty table"),
            TableError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}

/// Convenience result alias for table operations.
pub type Result<T> = std::result::Result<T, TableError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn display_column_not_found() {
        let e = TableError::ColumnNotFound("age".into());
        assert_eq!(e.to_string(), "column not found: age");
    }

    #[test]
    fn display_length_mismatch() {
        let e = TableError::LengthMismatch {
            column: "x".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("length 2"));
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn display_type_mismatch() {
        let e = TableError::TypeMismatch {
            column: "x".into(),
            expected: DataType::Float,
            actual: DataType::Str,
        };
        assert!(e.to_string().contains("expected type float"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TableError = io.into();
        assert!(matches!(e, TableError::Io(_)));
    }
}
