//! Exact, order-independent `f64` summation.
//!
//! [`ExactSum`] accumulates IEEE doubles into a fixed-point
//! **superaccumulator**: an array of base-2³² digits spanning the whole
//! double range (2⁻¹⁰⁷⁴ … 2¹⁰²³, plus headroom for 2⁶³ addends), with
//! positive and negative addends kept in separate magnitude arrays so no
//! signed-carry arithmetic is ever needed. Every addition is exact, so
//! the final [`ExactSum::value`] — the exact total rounded **once** to
//! the nearest double (ties to even) — depends only on the *multiset* of
//! addends, never on the order they arrived in or on how partial sums
//! were merged.
//!
//! That invariance is what the sharded OLAP engine is built on: a cube
//! can partition its fact rows into any number of shards, accumulate
//! per shard, and [`ExactSum::merge`] the partials, and the result is
//! bitwise identical to a sequential single-shard pass (DESIGN.md §14).
//! [`crate::group_by`]'s `Sum`/`Mean` aggregates run on the same
//! accumulator, so the table layer and the cube engine agree exactly.
//!
//! Non-finite addends are tracked out-of-band the way a left-to-right
//! IEEE sum behaves once order no longer matters: any NaN — or both
//! +∞ and −∞ together — makes the total NaN; otherwise an ∞ of a single
//! sign wins; otherwise the total is the correctly rounded exact sum of
//! the finite addends (overflow to ±∞ only if the *exact* total rounds
//! there, never from an intermediate).
//!
//! ```
//! use openbi_table::ExactSum;
//!
//! let mut forward = ExactSum::new();
//! for x in [1e16, 1.0, -1e16, 1.0] {
//!     forward.add(x);
//! }
//! assert_eq!(forward.value(), 2.0); // naive left-to-right gives 0.0 or 2.0 by order
//!
//! let (mut a, mut b) = (ExactSum::new(), ExactSum::new());
//! a.add(1e16);
//! a.add(1.0);
//! b.add(-1e16);
//! b.add(1.0);
//! a.merge(&b);
//! assert_eq!(a.value(), 2.0); // any partition merges to the same bits
//! ```

/// Number of base-2³² digits. Bit `b` of the fixed-point grid weighs
/// 2^(b − 1074); the largest finite double tops out at bit 2097, and
/// 2⁶³ worst-case addends need 63 more bits, so 68 digits (2176 bits)
/// cover every reachable total with room to spare.
const DIGITS: usize = 68;

/// Digits hold values `< 2³²` when normalized; each `add` deposits at
/// most `2³² − 1` per digit, so a `u64` digit can absorb 2³⁰ additions
/// between carry propagations without overflow.
const CARRY_EVERY: u32 = 1 << 30;

const MASK32: u64 = 0xFFFF_FFFF;

/// An exact, mergeable accumulator for `f64` addends.
///
/// `add` is exact (no rounding), `merge` is exact, and [`ExactSum::value`]
/// rounds the exact total to the nearest double exactly once — so the
/// result is independent of addition order and merge topology. See the
/// module docs for the non-finite rules.
#[derive(Debug, Clone)]
pub struct ExactSum {
    /// Magnitudes of positive addends, base-2³² little-endian digits.
    pos: [u64; DIGITS],
    /// Magnitudes of negative addends.
    neg: [u64; DIGITS],
    /// Lowest digit index touched so far (`DIGITS` when none): real
    /// sums touch a handful of the 68 digits, so normalize/merge walk
    /// only `lo..=hi` instead of the whole grid — the difference
    /// between O(68) and O(3) per cube-cell merge.
    lo: usize,
    /// Highest digit index touched so far (`0` when none).
    hi: usize,
    /// Additions since the last carry propagation.
    pending: u32,
    /// Count of `+∞` addends.
    pos_inf: u64,
    /// Count of `-∞` addends.
    neg_inf: u64,
    /// Whether any NaN was added.
    nan: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum::new()
    }
}

impl ExactSum {
    /// An empty sum (value `0.0`).
    pub fn new() -> Self {
        ExactSum {
            pos: [0; DIGITS],
            neg: [0; DIGITS],
            lo: DIGITS,
            hi: 0,
            pending: 0,
            pos_inf: 0,
            neg_inf: 0,
            nan: false,
        }
    }

    /// Add one addend, exactly.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            self.nan = true;
            return;
        }
        if x.is_infinite() {
            if x > 0.0 {
                self.pos_inf += 1;
            } else {
                self.neg_inf += 1;
            }
            return;
        }
        if x == 0.0 {
            return; // ±0 contributes nothing to an exact sum
        }
        let bits = x.to_bits();
        let negative = bits >> 63 == 1;
        let be = ((bits >> 52) & 0x7FF) as usize;
        let frac = bits & ((1u64 << 52) - 1);
        // value = m × 2^(offset − 1074): subnormals sit at offset 0,
        // normals carry the implicit leading bit.
        let (m, offset) = if be == 0 {
            (frac, 0)
        } else {
            (frac | (1u64 << 52), be - 1)
        };
        let digits = if negative {
            &mut self.neg
        } else {
            &mut self.pos
        };
        let v = (m as u128) << (offset % 32);
        let d = offset / 32;
        digits[d] += (v & MASK32 as u128) as u64;
        digits[d + 1] += ((v >> 32) & MASK32 as u128) as u64;
        digits[d + 2] += (v >> 64) as u64;
        self.lo = self.lo.min(d);
        self.hi = self.hi.max(d + 2);
        self.pending += 1;
        if self.pending >= CARRY_EVERY {
            self.normalize();
        }
    }

    /// Fold another accumulator in, exactly. The result is the
    /// accumulator of the combined multiset of addends.
    ///
    /// No clone, O(touched digits): `other` may carry pending
    /// un-normalized digits, but the lazy-carry invariant bounds every
    /// digit below 2⁶², so adding a normalized (`< 2³²`) digit cannot
    /// overflow a `u64` before the renormalize.
    pub fn merge(&mut self, other: &ExactSum) {
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
        self.nan |= other.nan;
        if other.lo > other.hi {
            return; // no finite addends on the other side
        }
        self.normalize();
        for i in other.lo..=other.hi {
            self.pos[i] += other.pos[i];
            self.neg[i] += other.neg[i];
        }
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        self.normalize();
    }

    /// Propagate carries so every touched digit is `< 2³²` again (the
    /// top digit keeps the full carry; by construction it never
    /// overflows). Walks only `lo..=hi` plus however far a carry runs.
    fn normalize(&mut self) {
        self.pending = 0;
        if self.lo > self.hi {
            return;
        }
        let mut new_hi = self.hi;
        for digits in [&mut self.pos, &mut self.neg] {
            let mut carry: u64 = 0;
            let mut i = self.lo;
            loop {
                if i == DIGITS - 1 {
                    digits[i] += carry;
                    new_hi = DIGITS - 1;
                    break;
                }
                let t = digits[i] + carry;
                digits[i] = t & MASK32;
                carry = t >> 32;
                if i >= self.hi && carry == 0 {
                    new_hi = new_hi.max(i);
                    break;
                }
                i += 1;
            }
        }
        self.hi = new_hi;
    }

    /// The exact total rounded once to the nearest `f64` (ties to even).
    pub fn value(&self) -> f64 {
        if self.nan || (self.pos_inf > 0 && self.neg_inf > 0) {
            return f64::NAN;
        }
        if self.pos_inf > 0 {
            return f64::INFINITY;
        }
        if self.neg_inf > 0 {
            return f64::NEG_INFINITY;
        }
        let mut n = self.clone();
        n.normalize();
        // Exact difference |pos − neg| with its sign.
        let (mag, negative) = match compare(&n.pos, &n.neg) {
            std::cmp::Ordering::Equal => return 0.0,
            std::cmp::Ordering::Greater => (subtract(&n.pos, &n.neg), false),
            std::cmp::Ordering::Less => (subtract(&n.neg, &n.pos), true),
        };
        round_to_f64(&mag, negative)
    }

    /// True iff no addend has been recorded (distinct from a sum that
    /// cancels to zero).
    pub fn is_empty(&self) -> bool {
        !self.nan
            && self.pos_inf == 0
            && self.neg_inf == 0
            && self.pos.iter().all(|&d| d == 0)
            && self.neg.iter().all(|&d| d == 0)
            && self.pending == 0
    }
}

/// Compare two normalized magnitude arrays.
fn compare(a: &[u64; DIGITS], b: &[u64; DIGITS]) -> std::cmp::Ordering {
    for i in (0..DIGITS).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// `a − b` over normalized magnitudes, requiring `a ≥ b`.
fn subtract(a: &[u64; DIGITS], b: &[u64; DIGITS]) -> [u64; DIGITS] {
    let mut out = [0u64; DIGITS];
    let mut borrow: u64 = 0;
    for i in 0..DIGITS {
        let (t, under) = a[i].overflowing_sub(b[i] + borrow);
        if under {
            out[i] = t.wrapping_add(1 << 32) & MASK32;
            borrow = 1;
        } else if i < DIGITS - 1 && t > MASK32 {
            // Cannot happen for normalized inputs, but keep digits canonical.
            out[i] = t & MASK32;
            borrow = 0;
        } else {
            out[i] = t;
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "subtract requires a >= b");
    out
}

/// Bit `b` of a magnitude array (fixed-point grid index).
fn get_bit(mag: &[u64; DIGITS], b: usize) -> u64 {
    (mag[b / 32] >> (b % 32)) & 1
}

/// Round a normalized magnitude (grid: bit b = 2^(b − 1074)) to the
/// nearest double, ties to even; `negative` sets the sign bit.
fn round_to_f64(mag: &[u64; DIGITS], negative: bool) -> f64 {
    // Most significant set bit.
    let mut top = None;
    for i in (0..DIGITS).rev() {
        if mag[i] != 0 {
            top = Some(32 * i + (63 - mag[i].leading_zeros() as usize));
            break;
        }
    }
    let h = match top {
        None => return 0.0,
        Some(h) => h,
    };
    let sign = if negative { 1u64 << 63 } else { 0 };
    if h <= 52 {
        // Fits the grid's bottom 53 bits: subnormal or smallest normals,
        // exactly representable — no rounding.
        let m = mag[0] | (mag[1] << 32);
        let bits = if m < (1u64 << 52) {
            m // subnormal: biased exponent 0
        } else {
            (1u64 << 52) | (m & ((1u64 << 52) - 1)) // normal with be = 1
        };
        return f64::from_bits(sign | bits);
    }
    // Extract the 53-bit mantissa [h-52, h], guard bit and sticky below.
    let mut m: u64 = 0;
    for b in (h - 52..=h).rev() {
        m = (m << 1) | get_bit(mag, b);
    }
    let guard = get_bit(mag, h - 53) == 1;
    // Sticky: any set bit strictly below the guard position.
    let sticky = guard && {
        let cut = h - 53;
        let whole_digits = cut / 32;
        mag[..whole_digits].iter().any(|&d| d != 0)
            || (cut % 32 != 0 && mag[whole_digits] & ((1u64 << (cut % 32)) - 1) != 0)
    };
    let mut h = h;
    if guard && (sticky || (m & 1) == 1) {
        m += 1;
        if m == 1u64 << 53 {
            m >>= 1;
            h += 1;
        }
    }
    // value = m × 2^(h − 52 − 1074); biased exponent = h − 51.
    let e = h as i64 - 1074; // exponent of the MSB
    if e > 1023 {
        return if negative {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
    }
    let be = (h - 51) as u64;
    f64::from_bits(sign | (be << 52) | (m & ((1u64 << 52) - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(values: &[f64]) -> f64 {
        let mut s = ExactSum::new();
        for &v in values {
            s.add(v);
        }
        s.value()
    }

    /// SplitMix64 stream of doubles spanning many magnitudes and signs.
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| {
                let u = next();
                let mantissa = (u >> 11) as f64 / (1u64 << 53) as f64;
                let exp = ((next() % 120) as i32) - 60;
                let sign = if next() % 2 == 0 { 1.0 } else { -1.0 };
                sign * mantissa * 2f64.powi(exp)
            })
            .collect()
    }

    #[test]
    fn simple_sums_match_naive() {
        assert_eq!(exact(&[]), 0.0);
        assert_eq!(exact(&[1.5]), 1.5);
        assert_eq!(exact(&[10.0, 20.0, 30.0]), 60.0);
        assert_eq!(exact(&[0.1, 0.2]), 0.1 + 0.2);
        assert_eq!(exact(&[-2.5, 2.5]), 0.0);
        assert_eq!(exact(&[-0.0, -0.0]), 0.0);
    }

    #[test]
    fn cancellation_is_exact() {
        assert_eq!(exact(&[1e16, 1.0, -1e16, 1.0]), 2.0);
        assert_eq!(exact(&[1e308, 1e308, -1e308]), 1e308);
        let tiny = f64::from_bits(1); // smallest subnormal
        assert_eq!(exact(&[1.0, tiny, -1.0]), tiny);
    }

    #[test]
    fn order_independence_on_random_streams() {
        for seed in [7u64, 21, 1042] {
            let values = stream(seed, 4_000);
            let forward = exact(&values);
            let mut rev = values.clone();
            rev.reverse();
            assert_eq!(forward.to_bits(), exact(&rev).to_bits(), "seed {seed}");
            // Interleaved partition.
            let mut sa = ExactSum::new();
            let mut sb = ExactSum::new();
            for (i, v) in values.iter().enumerate() {
                if i % 2 == 0 {
                    sa.add(*v);
                } else {
                    sb.add(*v);
                }
            }
            sa.merge(&sb);
            assert_eq!(forward.to_bits(), sa.value().to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn merge_matches_sequential_at_any_split() {
        let values = stream(3, 257);
        let expected = exact(&values);
        for shards in [1usize, 2, 3, 5, 8, 257] {
            let mut partials: Vec<ExactSum> = (0..shards).map(|_| ExactSum::new()).collect();
            for (i, v) in values.iter().enumerate() {
                partials[i * shards / values.len()].add(*v);
            }
            let mut total = ExactSum::new();
            for p in &partials {
                total.merge(p);
            }
            assert_eq!(
                expected.to_bits(),
                total.value().to_bits(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn non_finite_rules() {
        assert_eq!(exact(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(exact(&[f64::NEG_INFINITY, 1e300]), f64::NEG_INFINITY);
        assert!(exact(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(exact(&[f64::NAN, 1.0]).is_nan());
        assert!(exact(&[1.0, f64::NAN, f64::INFINITY]).is_nan());
    }

    #[test]
    fn overflow_only_when_the_exact_total_overflows() {
        // Intermediate would overflow naively; exact total is finite.
        assert_eq!(exact(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
        // Exact total past the rounding threshold really is infinite.
        assert_eq!(exact(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(exact(&[-f64::MAX, -f64::MAX]), f64::NEG_INFINITY);
    }

    #[test]
    fn subnormal_totals_are_exact() {
        let tiny = f64::from_bits(3);
        assert_eq!(exact(&[tiny, tiny]), f64::from_bits(6));
        let min_pos = f64::from_bits(1);
        assert_eq!(exact(&[min_pos, -min_pos]), 0.0);
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-53 is exactly halfway between 1.0 and the next double:
        // round-to-even keeps 1.0.
        let half_ulp = 2f64.powi(-53);
        assert_eq!(exact(&[1.0, half_ulp]), 1.0);
        // Adding any dust below the halfway point tips it up.
        let dust = 2f64.powi(-80);
        assert_eq!(exact(&[1.0, half_ulp, dust]), 1.0 + 2f64.powi(-52));
        // 1 + 3·2^-54 is past halfway: rounds up.
        assert_eq!(
            exact(&[1.0, half_ulp, 2f64.powi(-54)]),
            1.0 + 2f64.powi(-52)
        );
    }

    #[test]
    fn matches_naive_when_naive_is_exact() {
        // Integer-valued doubles well inside 2^53: naive summation is
        // exact too, so both must agree bit for bit.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37 % 1000) as f64) - 500.0)
            .collect();
        let naive: f64 = values.iter().sum();
        assert_eq!(exact(&values).to_bits(), naive.to_bits());
    }

    #[test]
    fn is_empty_tracks_addends() {
        let mut s = ExactSum::new();
        assert!(s.is_empty());
        s.add(0.0);
        assert!(s.is_empty(), "±0 adds nothing");
        s.add(2.0);
        assert!(!s.is_empty());
        let mut t = ExactSum::new();
        t.add(-2.0);
        s.merge(&t);
        assert_eq!(s.value(), 0.0);
        assert!(!s.is_empty(), "cancelled is not empty");
    }

    #[test]
    fn many_addends_survive_carry_pressure() {
        // Hammer a single digit region far past a u32's worth of chunk
        // additions would allow without propagation logic.
        let mut s = ExactSum::new();
        let x = 1.5f64;
        let n = 200_000u32;
        for _ in 0..n {
            s.add(x);
        }
        assert_eq!(s.value(), 1.5 * n as f64);
    }
}
