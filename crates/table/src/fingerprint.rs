//! Content fingerprinting for tables, columns, and rows.
//!
//! The quality layer caches a full [`crate::Table`] profile under a key
//! derived from the table *contents* (not its identity), so two
//! materializations of the same `(dataset, degradation, seed)` cell hit the
//! same cache slot. That needs a hash that is:
//!
//! * **deterministic across processes** — `std::collections::HashMap`'s
//!   SipHash keys are randomized per process, so we roll a fixed-key
//!   FNV-style mixer instead;
//! * **wide enough that collisions are ignorable** — two independent 64-bit
//!   lanes give a 128-bit digest; at the cache's working-set sizes
//!   (hundreds of tables) accidental collision probability is ~2⁻¹⁰⁰;
//! * **canonical over floats** — every NaN bit pattern collapses to one
//!   fingerprint (mirroring how `Value::to_string` renders all NaNs as
//!   `"NaN"`), while `0.0` and `-0.0` stay distinct (they stringify
//!   differently and are legitimately different bit patterns).
//!
//! The digest covers schema and data: column names, declared dtypes, the
//! row count, and every cell column-major with explicit null/value tags.

/// Fixed odd multiplier for the first lane (the 64-bit FNV prime).
const LANE0_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Fixed odd multiplier for the second lane (golden-ratio based).
const LANE1_PRIME: u64 = 0x9E37_79B9_7F4A_7C15;
/// FNV-1a offset basis, seeding the first lane.
const LANE0_SEED: u64 = 0xCBF2_9CE4_8422_2325;
/// Arbitrary non-zero seed for the second lane.
const LANE1_SEED: u64 = 0x5851_F42D_4C95_7F2D;

/// SplitMix64 finalizer: diffuses every input bit across the word.
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix one 64-bit word into a running 64-bit hash with a fixed key.
///
/// Exposed for per-row hashing in the duplicate-detection kernel: fold each
/// cell's canonical word into an accumulator seeded with [`row_hash_seed`].
pub fn mix_u64(h: u64, word: u64) -> u64 {
    finalize((h ^ word).wrapping_mul(LANE1_PRIME))
}

/// Starting accumulator for [`mix_u64`]-based row hashing.
pub fn row_hash_seed() -> u64 {
    LANE1_SEED
}

/// Canonical bit pattern of an `f64` for hashing/equality: all NaNs map to
/// one pattern; everything else (including `-0.0` vs `0.0`) keeps its bits.
pub fn canonical_f64_bits(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

/// Incremental 128-bit content hasher (two independent 64-bit lanes).
#[derive(Debug, Clone)]
pub struct Fnv128 {
    lane0: u64,
    lane1: u64,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// Fresh hasher with the fixed seeds.
    pub fn new() -> Self {
        Fnv128 {
            lane0: LANE0_SEED,
            lane1: LANE1_SEED,
        }
    }

    /// Mix one 64-bit word into both lanes.
    pub fn write_u64(&mut self, word: u64) {
        self.lane0 = (self.lane0 ^ word).wrapping_mul(LANE0_PRIME);
        self.lane0 = self.lane0.rotate_left(29) ^ word.rotate_left(17);
        self.lane1 = finalize((self.lane1 ^ word).wrapping_mul(LANE1_PRIME));
    }

    /// Mix a byte string (length-prefixed, then 8-byte words with
    /// zero-padded tail) so `["ab","c"]` and `["a","bc"]` differ.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Finish: both lanes pass through the finalizer and concatenate.
    pub fn finish(&self) -> u128 {
        let lo = finalize(self.lane0);
        let hi = finalize(self.lane1 ^ self.lane0.rotate_left(32));
        ((hi as u128) << 64) | lo as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fnv128::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv128::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv128::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn byte_boundaries_matter() {
        let mut a = Fnv128::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fnv128::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn canonical_floats() {
        let nan1 = f64::NAN;
        let nan2 = f64::from_bits(0x7FF8_0000_0000_0001);
        assert!(nan2.is_nan());
        assert_eq!(canonical_f64_bits(nan1), canonical_f64_bits(nan2));
        assert_ne!(canonical_f64_bits(0.0), canonical_f64_bits(-0.0));
        assert_eq!(canonical_f64_bits(1.5), 1.5f64.to_bits());
    }

    #[test]
    fn mix_u64_spreads_small_inputs() {
        let h0 = row_hash_seed();
        let a = mix_u64(h0, 0);
        let b = mix_u64(h0, 1);
        assert_ne!(a, b);
        // A one-bit input difference flips a healthy share of output bits.
        assert!((a ^ b).count_ones() >= 16);
    }
}
