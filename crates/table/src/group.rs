//! Group-by and aggregation.
//!
//! Used directly and as the engine under the OLAP crate's rollups.

use crate::column::Column;
use crate::error::{Result, TableError};
use crate::exact::ExactSum;
use crate::table::Table;
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// An aggregation over a (numeric, unless noted) column.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// Number of non-null cells (any type).
    Count(String),
    /// Sum of non-null numeric cells.
    Sum(String),
    /// Mean of non-null numeric cells.
    Mean(String),
    /// Minimum of non-null numeric cells.
    Min(String),
    /// Maximum of non-null numeric cells.
    Max(String),
    /// Number of distinct non-null values (any type).
    CountDistinct(String),
}

impl Aggregate {
    /// The source column the aggregate reads.
    pub fn column(&self) -> &str {
        match self {
            Aggregate::Count(c)
            | Aggregate::Sum(c)
            | Aggregate::Mean(c)
            | Aggregate::Min(c)
            | Aggregate::Max(c)
            | Aggregate::CountDistinct(c) => c,
        }
    }

    /// Name of the output column.
    pub fn output_name(&self) -> String {
        match self {
            Aggregate::Count(c) => format!("count({c})"),
            Aggregate::Sum(c) => format!("sum({c})"),
            Aggregate::Mean(c) => format!("mean({c})"),
            Aggregate::Min(c) => format!("min({c})"),
            Aggregate::Max(c) => format!("max({c})"),
            Aggregate::CountDistinct(c) => format!("count_distinct({c})"),
        }
    }

    fn evaluate(&self, table: &Table, rows: &[usize]) -> Result<Value> {
        let col = table.column(self.column())?;
        Ok(match self {
            Aggregate::Count(_) => Value::Int(
                rows.iter()
                    .filter(|&&r| !col.get(r).expect("in-bounds").is_null())
                    .count() as i64,
            ),
            Aggregate::CountDistinct(_) => {
                let mut seen: Vec<String> = Vec::new();
                for &r in rows {
                    let v = col.get(r).expect("in-bounds");
                    if v.is_null() {
                        continue;
                    }
                    let s = v.to_string();
                    if !seen.contains(&s) {
                        seen.push(s);
                    }
                }
                Value::Int(seen.len() as i64)
            }
            Aggregate::Sum(_) | Aggregate::Mean(_) | Aggregate::Min(_) | Aggregate::Max(_) => {
                let vals: Vec<f64> = rows
                    .iter()
                    .filter_map(|&r| col.get(r).expect("in-bounds").as_f64())
                    .collect();
                if vals.is_empty() {
                    Value::Null
                } else {
                    // Sum and Mean go through the exact superaccumulator
                    // (`ExactSum`) so the result is independent of row
                    // order and of how the rows are partitioned — the
                    // invariant the sharded OLAP engine's differential
                    // tests rely on (DESIGN.md §14).
                    match self {
                        Aggregate::Sum(_) => {
                            let mut s = ExactSum::new();
                            for &v in &vals {
                                s.add(v);
                            }
                            Value::Float(s.value())
                        }
                        Aggregate::Mean(_) => {
                            let mut s = ExactSum::new();
                            for &v in &vals {
                                s.add(v);
                            }
                            Value::Float(s.value() / vals.len() as f64)
                        }
                        // Min/Max fold with explicit strict comparisons
                        // rather than `f64::min`/`f64::max`: the
                        // intrinsics' ±0.0 tie sign is codegen-defined,
                        // which would leave the result unspecified. The
                        // strict fold pins it: first-seen wins ties, NaN
                        // never beats the running best — the contract
                        // the sharded OLAP engine reproduces
                        // (DESIGN.md §14).
                        Aggregate::Min(_) => {
                            let mut best = f64::INFINITY;
                            for &v in &vals {
                                if v < best {
                                    best = v;
                                }
                            }
                            Value::Float(best)
                        }
                        Aggregate::Max(_) => {
                            let mut best = f64::NEG_INFINITY;
                            for &v in &vals {
                                if v > best {
                                    best = v;
                                }
                            }
                            Value::Float(best)
                        }
                        _ => unreachable!(),
                    }
                }
            }
        })
    }
}

/// Group rows by the distinct value combinations of `keys` and compute the
/// aggregates per group. Output has one row per group: key columns (as
/// strings; nulls grouped together under an empty key) then aggregates.
/// Groups appear in first-seen row order.
pub fn group_by(table: &Table, keys: &[&str], aggregates: &[Aggregate]) -> Result<Table> {
    for k in keys {
        table.column(k)?;
    }
    for a in aggregates {
        table.column(a.column())?;
    }
    if keys.is_empty() {
        return Err(TableError::InvalidArgument(
            "group_by requires at least one key column".to_string(),
        ));
    }
    let key_cols: Vec<&Column> = keys
        .iter()
        .map(|k| table.column(k).expect("checked"))
        .collect();
    let mut order: Vec<Vec<String>> = Vec::new();
    let mut groups: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
    for r in 0..table.n_rows() {
        let key: Vec<String> = key_cols
            .iter()
            .map(|c| c.get(r).expect("in-bounds").to_string())
            .collect();
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                Vec::new()
            })
            .push(r);
    }
    let mut out_cols: Vec<Column> = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        let values: Vec<String> = order.iter().map(|key| key[i].clone()).collect();
        out_cols.push(Column::from_str_values(*k, values));
    }
    for agg in aggregates {
        let mut values: Vec<Value> = Vec::with_capacity(order.len());
        for key in &order {
            values.push(agg.evaluate(table, &groups[key])?);
        }
        let dtype = match agg {
            Aggregate::Count(_) | Aggregate::CountDistinct(_) => DataType::Int,
            _ => DataType::Float,
        };
        out_cols.push(Column::from_values(agg.output_name(), dtype, values)?);
    }
    Table::new(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(vec![
            Column::from_str_values("dept", ["a", "b", "a", "b", "a"]),
            Column::from_str_values("year", ["1", "1", "2", "2", "2"]),
            Column::from_opt_f64(
                "spend",
                [Some(10.0), Some(20.0), Some(30.0), None, Some(50.0)],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn single_key_sums() {
        let g = group_by(&sample(), &["dept"], &[Aggregate::Sum("spend".into())]).unwrap();
        assert_eq!(g.n_rows(), 2);
        // first-seen order: a then b
        assert_eq!(g.get("dept", 0).unwrap(), Value::Str("a".into()));
        assert_eq!(g.get("sum(spend)", 0).unwrap(), Value::Float(90.0));
        assert_eq!(g.get("sum(spend)", 1).unwrap(), Value::Float(20.0));
    }

    #[test]
    fn multi_key_counts() {
        let g = group_by(
            &sample(),
            &["dept", "year"],
            &[Aggregate::Count("spend".into())],
        )
        .unwrap();
        assert_eq!(g.n_rows(), 4);
        // (b, 2) has a null spend, so count = 0.
        let row = (0..g.n_rows())
            .find(|&i| {
                g.get("dept", i).unwrap() == Value::Str("b".into())
                    && g.get("year", i).unwrap() == Value::Str("2".into())
            })
            .unwrap();
        assert_eq!(g.get("count(spend)", row).unwrap(), Value::Int(0));
    }

    #[test]
    fn mean_min_max_distinct() {
        let g = group_by(
            &sample(),
            &["dept"],
            &[
                Aggregate::Mean("spend".into()),
                Aggregate::Min("spend".into()),
                Aggregate::Max("spend".into()),
                Aggregate::CountDistinct("year".into()),
            ],
        )
        .unwrap();
        assert_eq!(g.get("mean(spend)", 0).unwrap(), Value::Float(30.0));
        assert_eq!(g.get("min(spend)", 0).unwrap(), Value::Float(10.0));
        assert_eq!(g.get("max(spend)", 0).unwrap(), Value::Float(50.0));
        assert_eq!(g.get("count_distinct(year)", 0).unwrap(), Value::Int(2));
    }

    #[test]
    fn all_null_group_yields_null_mean() {
        let t = Table::new(vec![
            Column::from_str_values("k", ["x"]),
            Column::from_opt_f64("v", [None]),
        ])
        .unwrap();
        let g = group_by(&t, &["k"], &[Aggregate::Mean("v".into())]).unwrap();
        assert!(g.get("mean(v)", 0).unwrap().is_null());
    }

    #[test]
    fn missing_column_is_error() {
        assert!(group_by(&sample(), &["nope"], &[]).is_err());
        assert!(group_by(&sample(), &["dept"], &[Aggregate::Sum("nope".into())]).is_err());
        assert!(group_by(&sample(), &[], &[]).is_err());
    }
}
