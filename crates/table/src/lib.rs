//! # openbi-table
//!
//! Columnar, in-memory tabular data substrate for OpenBI.
//!
//! This crate is the "raw open data" layer of the OpenBI reproduction:
//! open data is typically published as CSV/HTML tables "without paying
//! attention to structure nor semantics" (paper, §1), and everything above
//! it — quality measurement, quality-defect injection, mining, OLAP — works
//! over the [`Table`] type defined here.
//!
//! Design notes:
//! * Columns are typed vectors of `Option<T>` ([`column::ColumnData`]), so
//!   numeric scans avoid per-cell enum dispatch; the dynamically typed
//!   [`Value`] is only materialized at cell-level APIs.
//! * Every statistic is null-aware (computed over non-null cells).
//! * The only pseudo-randomness (row sampling) is an explicit-seed
//!   SplitMix64, keeping the substrate dependency-free and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod error;
pub mod exact;
pub mod fingerprint;
pub mod group;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use column::{Column, ColumnData};
pub use csv::{read_csv_path, read_csv_str, write_csv_path, write_csv_str, CsvOptions};
pub use error::{Result, TableError};
pub use exact::ExactSum;
pub use fingerprint::Fnv128;
pub use group::{group_by, Aggregate};
pub use schema::{Field, Schema};
pub use stats::NumericSummary;
pub use table::Table;
pub use value::{DataType, Value};
