//! Table schemas: ordered, named, typed fields.

use crate::value::DataType;

/// A single field (column descriptor) in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
    /// Whether the column currently contains nulls.
    pub nullable: bool,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType, nullable: bool) -> Self {
        Field {
            name: name.into(),
            dtype,
            nullable,
        }
    }
}

/// An ordered collection of fields describing a table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Create a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of all fields, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Names of all numeric (int/float) fields.
    pub fn numeric_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int, false),
            Field::new("score", DataType::Float, true),
            Field::new("label", DataType::Str, false),
        ])
    }

    #[test]
    fn index_and_lookup() {
        let s = sample();
        assert_eq!(s.index_of("score"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field("label").unwrap().dtype, DataType::Str);
    }

    #[test]
    fn numeric_names_filters() {
        let s = sample();
        assert_eq!(s.numeric_names(), vec!["id", "score"]);
    }

    #[test]
    fn names_in_order() {
        assert_eq!(sample().names(), vec!["id", "score", "label"]);
    }
}
