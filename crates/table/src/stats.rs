//! Descriptive statistics over columns.
//!
//! Null-aware: every statistic is computed over the non-null cells only.

use crate::column::Column;
use crate::error::{Result, TableError};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Summary statistics of a numeric column (non-null cells only).
#[derive(Debug, Clone, PartialEq)]
pub struct NumericSummary {
    /// Number of non-null cells.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 when count < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation).
    pub median: f64,
    /// First quartile.
    pub q1: f64,
    /// Third quartile.
    pub q3: f64,
}

fn non_null_f64(column: &Column) -> Vec<f64> {
    column.to_f64_vec().into_iter().flatten().collect()
}

/// Linear-interpolation quantile of a **sorted** slice, `q` in `[0,1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Mean of non-null numeric cells; `None` if the column has no numeric data.
pub fn mean(column: &Column) -> Option<f64> {
    let v = non_null_f64(column);
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Sample variance (n-1) of non-null numeric cells.
pub fn variance(column: &Column) -> Option<f64> {
    let v = non_null_f64(column);
    if v.len() < 2 {
        return if v.len() == 1 { Some(0.0) } else { None };
    }
    let m = v.iter().sum::<f64>() / v.len() as f64;
    Some(v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64)
}

/// Sample standard deviation of non-null numeric cells.
pub fn std_dev(column: &Column) -> Option<f64> {
    variance(column).map(f64::sqrt)
}

/// Full numeric summary; error if the column has no numeric cells.
pub fn summarize(column: &Column) -> Result<NumericSummary> {
    let mut v = non_null_f64(column);
    if v.is_empty() {
        return Err(TableError::InvalidArgument(format!(
            "column {} has no numeric data",
            column.name()
        )));
    }
    v.sort_by(f64::total_cmp);
    let count = v.len();
    let mean = v.iter().sum::<f64>() / count as f64;
    let std = if count < 2 {
        0.0
    } else {
        (v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64).sqrt()
    };
    Ok(NumericSummary {
        count,
        mean,
        std,
        min: v[0],
        max: v[count - 1],
        median: quantile_sorted(&v, 0.5),
        q1: quantile_sorted(&v, 0.25),
        q3: quantile_sorted(&v, 0.75),
    })
}

/// Pearson correlation between two numeric columns, over rows where both
/// are non-null **and finite** (NaN/±inf cells are treated like nulls, so
/// one corrupt cell cannot poison the whole coefficient). `None` when fewer
/// than two usable pairs or zero variance.
pub fn pearson(a: &Column, b: &Column) -> Option<f64> {
    let av = a.to_f64_vec();
    let bv = b.to_f64_vec();
    let pairs: Vec<(f64, f64)> = av
        .iter()
        .zip(bv.iter())
        .filter_map(|(x, y)| {
            let (x, y) = ((*x)?, (*y)?);
            (x.is_finite() && y.is_finite()).then_some((x, y))
        })
        .collect();
    pearson_pairs(&pairs)
}

fn pearson_pairs(pairs: &[(f64, f64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n as f64;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    // Clamp: rounding can push perfectly collinear data past ±1.
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Mid-rank transform used by Spearman correlation.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation between two numeric columns.
pub fn spearman(a: &Column, b: &Column) -> Option<f64> {
    let av = a.to_f64_vec();
    let bv = b.to_f64_vec();
    let pairs: Vec<(f64, f64)> = av
        .iter()
        .zip(bv.iter())
        .filter_map(|(x, y)| Some(((*x)?, (*y)?)))
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rx = ranks(&xs);
    let ry = ranks(&ys);
    let rp: Vec<(f64, f64)> = rx.into_iter().zip(ry).collect();
    pearson_pairs(&rp)
}

/// Frequency of each distinct non-null value (rendered as strings).
pub fn value_counts(column: &Column) -> HashMap<String, usize> {
    let mut counts = HashMap::new();
    for v in column.iter() {
        if let Value::Null = v {
            continue;
        }
        *counts.entry(v.to_string()).or_insert(0) += 1;
    }
    counts
}

/// Shannon entropy (bits) of the distribution of distinct non-null values.
///
/// The per-class terms are summed in lexicographic key order so the result
/// is a deterministic function of the distribution — summing in `HashMap`
/// iteration order would make the low bits depend on hasher state.
pub fn entropy(column: &Column) -> f64 {
    let counts = value_counts(column);
    let total: usize = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    let mut items: Vec<(String, usize)> = counts.into_iter().collect();
    items.sort_by(|a, b| a.0.cmp(&b.0));
    items
        .iter()
        .map(|&(_, c)| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Pairwise Pearson correlation matrix over the numeric columns of a table.
/// Returns `(names, matrix)`; absent correlations (constant columns) are 0.
pub fn correlation_matrix(table: &Table) -> (Vec<String>, Vec<Vec<f64>>) {
    let numeric: Vec<&Column> = table
        .columns()
        .iter()
        .filter(|c| c.dtype().is_numeric())
        .collect();
    let names: Vec<String> = numeric.iter().map(|c| c.name().to_string()).collect();
    let n = numeric.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in (i + 1)..n {
            let r = pearson(numeric[i], numeric[j]).unwrap_or(0.0);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    (names, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_skip_nulls() {
        let c = Column::from_opt_f64("x", [Some(1.0), None, Some(3.0)]);
        assert_eq!(mean(&c), Some(2.0));
        let s = std_dev(&c).unwrap();
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn summary_quartiles() {
        let c = Column::from_f64("x", [1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = summarize(&c).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn summary_of_string_column_errors() {
        let c = Column::from_str_values("s", ["a"]);
        assert!(summarize(&c).is_err());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = Column::from_f64("a", [1.0, 2.0, 3.0]);
        let b = Column::from_f64("b", [2.0, 4.0, 6.0]);
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = Column::from_f64("c", [3.0, 2.0, 1.0]);
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_column_is_none() {
        let a = Column::from_f64("a", [1.0, 1.0, 1.0]);
        let b = Column::from_f64("b", [1.0, 2.0, 3.0]);
        assert_eq!(pearson(&a, &b), None);
    }

    #[test]
    fn pearson_skips_incomplete_pairs() {
        let a = Column::from_opt_f64("a", [Some(1.0), Some(2.0), None, Some(3.0)]);
        let b = Column::from_opt_f64("b", [Some(2.0), None, Some(9.0), Some(6.0)]);
        // Complete pairs: (1,2),(3,6) — perfectly correlated.
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_skips_non_finite_pairs() {
        let a = Column::from_f64("a", [1.0, 2.0, f64::NAN, 3.0]);
        let b = Column::from_f64("b", [2.0, 4.0, 100.0, 6.0]);
        // NaN row is dropped like a null; remaining pairs are collinear.
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = Column::from_f64("c", [2.0, f64::INFINITY, 5.0, 6.0]);
        assert!(pearson(&a, &c).is_some());
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let a = Column::from_f64("a", [1.0, 2.0, 3.0, 4.0]);
        let b = Column::from_f64("b", [1.0, 8.0, 27.0, 64.0]);
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = Column::from_f64("a", [1.0, 2.0, 2.0, 3.0]);
        let b = Column::from_f64("b", [1.0, 2.0, 2.0, 3.0]);
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_binary_is_one_bit() {
        let c = Column::from_str_values("s", ["a", "b", "a", "b"]);
        assert!((entropy(&c) - 1.0).abs() < 1e-12);
        let pure = Column::from_str_values("s", ["a", "a"]);
        assert_eq!(entropy(&pure), 0.0);
    }

    #[test]
    fn value_counts_skips_null() {
        let c = Column::from_opt_str("s", [Some("a".to_string()), None, Some("a".to_string())]);
        let counts = value_counts(&c);
        assert_eq!(counts.get("a"), Some(&2));
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn correlation_matrix_symmetric_unit_diagonal() {
        let t = Table::new(vec![
            Column::from_f64("x", [1.0, 2.0, 3.0]),
            Column::from_f64("y", [2.0, 4.0, 6.0]),
            Column::from_str_values("s", ["a", "b", "c"]),
        ])
        .unwrap();
        let (names, m) = correlation_matrix(&t);
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[0][1], m[1][0]);
        assert!((m[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [10.0, 20.0];
        assert_eq!(quantile_sorted(&v, 0.5), 15.0);
        assert_eq!(quantile_sorted(&v, 0.0), 10.0);
        assert_eq!(quantile_sorted(&v, 1.0), 20.0);
    }
}
