//! The [`Table`]: an ordered collection of equally long named columns.

use crate::column::{Column, ColumnData};
use crate::error::{Result, TableError};
use crate::fingerprint::{canonical_f64_bits, Fnv128};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use std::fmt;

/// An in-memory columnar table.
///
/// Invariants: all columns have the same length and unique names.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    columns: Vec<Column>,
}

impl Table {
    /// Create an empty table (no columns, no rows).
    pub fn empty() -> Self {
        Table { columns: vec![] }
    }

    /// Create a table from columns, validating the invariants.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        if let Some(first) = columns.first() {
            let expected = first.len();
            for c in &columns {
                if c.len() != expected {
                    return Err(TableError::LengthMismatch {
                        column: c.name().to_string(),
                        expected,
                        actual: c.len(),
                    });
                }
            }
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        for w in names.windows(2) {
            if w[0] == w[1] {
                return Err(TableError::DuplicateColumn(w[0].to_string()));
            }
        }
        Ok(Table { columns })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The table's schema (derived from the columns).
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field::new(c.name(), c.dtype(), c.null_count() > 0))
                .collect(),
        )
    }

    /// All columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Names of all columns, in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))
    }

    /// Mutably borrow a column by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        self.columns
            .iter_mut()
            .find(|c| c.name() == name)
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))
    }

    /// Borrow a column by position.
    pub fn column_at(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// True iff a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name() == name)
    }

    /// Add a column (must match the row count; name must be fresh).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if self.has_column(column.name()) {
            return Err(TableError::DuplicateColumn(column.name().to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(TableError::LengthMismatch {
                column: column.name().to_string(),
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Remove and return a column by name.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let pos = self
            .columns
            .iter()
            .position(|c| c.name() == name)
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))?;
        Ok(self.columns.remove(pos))
    }

    /// Replace an existing column with a same-named column of equal length.
    pub fn replace_column(&mut self, column: Column) -> Result<()> {
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(TableError::LengthMismatch {
                column: column.name().to_string(),
                expected: self.n_rows(),
                actual: column.len(),
            });
        }
        let pos = self
            .columns
            .iter()
            .position(|c| c.name() == column.name())
            .ok_or_else(|| TableError::ColumnNotFound(column.name().to_string()))?;
        self.columns[pos] = column;
        Ok(())
    }

    /// Rename a column.
    pub fn rename_column(&mut self, from: &str, to: &str) -> Result<()> {
        if from != to && self.has_column(to) {
            return Err(TableError::DuplicateColumn(to.to_string()));
        }
        self.column_mut(from)?.set_name(to);
        Ok(())
    }

    /// Get a single cell.
    pub fn get(&self, column: &str, row: usize) -> Result<Value> {
        self.column(column)?.get(row)
    }

    /// Set a single cell.
    pub fn set(&mut self, column: &str, row: usize, value: Value) -> Result<()> {
        self.column_mut(column)?.set(row, value)
    }

    /// All values of one row, in column order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows() {
            return Err(TableError::RowOutOfBounds {
                row,
                len: self.n_rows(),
            });
        }
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Append a row given in column order.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.n_cols() {
            return Err(TableError::InvalidArgument(format!(
                "row has {} values, table has {} columns",
                values.len(),
                self.n_cols()
            )));
        }
        // Validate all pushes up-front so a failed push cannot leave ragged columns.
        for (c, v) in self.columns.iter().zip(&values) {
            let compatible = matches!(
                (c.dtype(), v),
                (_, Value::Null)
                    | (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_) | Value::Int(_))
                    | (DataType::Str, Value::Str(_))
                    | (DataType::Bool, Value::Bool(_))
            );
            if !compatible {
                return Err(TableError::TypeMismatch {
                    column: c.name().to_string(),
                    expected: c.dtype(),
                    actual: v.dtype().unwrap_or(c.dtype()),
                });
            }
        }
        for (c, v) in self.columns.iter_mut().zip(values) {
            c.push(v).expect("validated above");
        }
        Ok(())
    }

    /// Iterate over rows as `Vec<Value>`.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.n_rows()).map(move |i| self.row(i).expect("in-bounds"))
    }

    /// Project onto the given columns (in the given order).
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let cols: Result<Vec<Column>> = names.iter().map(|n| self.column(n).cloned()).collect();
        Table::new(cols?)
    }

    /// Gather rows by index (indices may repeat, enabling resampling).
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        let cols: Result<Vec<Column>> = self.columns.iter().map(|c| c.take(indices)).collect();
        Ok(Table { columns: cols? })
    }

    /// Keep rows where `pred(row_index)` is true.
    pub fn filter_by_index(&self, pred: impl Fn(usize) -> bool) -> Table {
        let idx: Vec<usize> = (0..self.n_rows()).filter(|&i| pred(i)).collect();
        self.take(&idx).expect("indices in bounds")
    }

    /// Keep rows where the predicate over the row's values is true.
    pub fn filter(&self, pred: impl Fn(&[Value]) -> bool) -> Table {
        let idx: Vec<usize> = (0..self.n_rows())
            .filter(|&i| pred(&self.row(i).expect("in-bounds")))
            .collect();
        self.take(&idx).expect("indices in bounds")
    }

    /// The first `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.n_rows());
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx).expect("indices in bounds")
    }

    /// Rows without any null cell.
    pub fn drop_nulls(&self) -> Table {
        self.filter(|row| row.iter().all(|v| !v.is_null()))
    }

    /// Stack another table with an identical schema below this one.
    pub fn vstack(&self, other: &Table) -> Result<Table> {
        if self.column_names() != other.column_names() {
            return Err(TableError::InvalidArgument(
                "vstack requires identical column names and order".to_string(),
            ));
        }
        let mut out = self.clone();
        for c in &mut out.columns {
            c.extend_from(other.column(c.name().to_string().as_str())?)?;
        }
        Ok(out)
    }

    /// Stable sort of rows by a column (nulls first; see `Value::total_cmp`).
    pub fn sort_by(&self, column: &str, descending: bool) -> Result<Table> {
        let col = self.column(column)?;
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.sort_by(|&a, &b| {
            let va = col.get(a).expect("in-bounds");
            let vb = col.get(b).expect("in-bounds");
            let ord = va.total_cmp(&vb);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        self.take(&idx)
    }

    /// The row indices [`Table::sample`] would select, in draw order.
    ///
    /// Exposed separately so callers that only need *which* rows were
    /// picked (e.g. the quality noise estimators, which gather the sampled
    /// rows into a scratch matrix) can skip materializing a new `Table`.
    /// Partial Fisher–Yates driven by a SplitMix64 stream, so the substrate
    /// needs no external RNG dependency.
    pub fn sample_indices(&self, n: usize, seed: u64) -> Vec<usize> {
        let len = self.n_rows();
        let n = n.min(len);
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut idx: Vec<usize> = (0..len).collect();
        for i in 0..n {
            let j = i + (next() as usize) % (len - i);
            idx.swap(i, j);
        }
        idx.truncate(n);
        idx
    }

    /// Deterministic pseudo-random row sample of size `n` without
    /// replacement; see [`Table::sample_indices`] for the index stream.
    pub fn sample(&self, n: usize, seed: u64) -> Table {
        let idx = self.sample_indices(n, seed);
        self.take(&idx).expect("indices in bounds")
    }

    /// Split rows into two tables at `at` (first table gets rows `0..at`).
    pub fn split_at(&self, at: usize) -> Result<(Table, Table)> {
        if at > self.n_rows() {
            return Err(TableError::RowOutOfBounds {
                row: at,
                len: self.n_rows(),
            });
        }
        let left: Vec<usize> = (0..at).collect();
        let right: Vec<usize> = (at..self.n_rows()).collect();
        Ok((self.take(&left)?, self.take(&right)?))
    }

    /// A compact textual key for a row, usable for exact-duplicate hashing.
    /// Nulls render distinctly from empty strings.
    pub fn row_key(&self, row: usize) -> Result<String> {
        let mut key = String::new();
        for c in &self.columns {
            match c.get(row)? {
                Value::Null => key.push('\u{0}'),
                v => {
                    key.push_str(&v.to_string());
                }
            }
            key.push('\u{1}');
        }
        Ok(key)
    }

    /// Total number of null cells in the table.
    pub fn total_null_count(&self) -> usize {
        self.columns.iter().map(|c| c.null_count()).sum()
    }

    /// 128-bit content fingerprint of schema and data.
    ///
    /// Covers column names, declared dtypes, the row count, and every cell
    /// column-major with explicit null/value tags, so any edit — renaming a
    /// column, flipping a cell to null, reordering columns — changes the
    /// digest. Floats hash by canonical bits (all NaNs equal; `0.0` and
    /// `-0.0` distinct), matching the equality the duplicate kernel uses.
    /// Deterministic across runs and platforms; used by the quality layer's
    /// profile cache to key measurements by content, not identity.
    pub fn fingerprint(&self) -> u128 {
        let mut h = Fnv128::new();
        h.write_u64(self.columns.len() as u64);
        h.write_u64(self.n_rows() as u64);
        for c in &self.columns {
            h.write_bytes(c.name().as_bytes());
            match c.data() {
                ColumnData::Int(v) => {
                    h.write_u64(0);
                    for cell in v {
                        match cell {
                            None => h.write_u64(0),
                            Some(i) => {
                                h.write_u64(1);
                                h.write_u64(*i as u64);
                            }
                        }
                    }
                }
                ColumnData::Float(v) => {
                    h.write_u64(1);
                    for cell in v {
                        match cell {
                            None => h.write_u64(0),
                            Some(x) => {
                                h.write_u64(1);
                                h.write_u64(canonical_f64_bits(*x));
                            }
                        }
                    }
                }
                ColumnData::Str(v) => {
                    h.write_u64(2);
                    for cell in v {
                        match cell {
                            None => h.write_u64(0),
                            Some(s) => {
                                h.write_u64(1);
                                h.write_bytes(s.as_bytes());
                            }
                        }
                    }
                }
                ColumnData::Bool(v) => {
                    h.write_u64(3);
                    for cell in v {
                        match cell {
                            None => h.write_u64(0),
                            Some(b) => {
                                h.write_u64(1);
                                h.write_u64(*b as u64);
                            }
                        }
                    }
                }
            }
        }
        h.finish()
    }

    /// Render the first `max_rows` rows as an aligned ASCII table.
    pub fn render(&self, max_rows: usize) -> String {
        let nrows = self.n_rows().min(max_rows);
        let mut widths: Vec<usize> = self
            .columns
            .iter()
            .map(|c| c.name().chars().count())
            .collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(nrows);
        for i in 0..nrows {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.get(i).expect("in-bounds").to_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.chars().count());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{:<w$}", c.name(), w = w))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&rule.join("-+-"));
        out.push('\n');
        for row in cells {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{:<w$}", c, w = w))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        if self.n_rows() > nrows {
            out.push_str(&format!("... {} more rows\n", self.n_rows() - nrows));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(vec![
            Column::from_i64("id", [1, 2, 3, 4]),
            Column::from_f64("score", [0.5, 0.9, 0.1, 0.7]),
            Column::from_str_values("label", ["a", "b", "a", "b"]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let err = Table::new(vec![
            Column::from_i64("a", [1, 2]),
            Column::from_i64("b", [1]),
        ])
        .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn construction_validates_names() {
        let err = Table::new(vec![
            Column::from_i64("a", [1]),
            Column::from_f64("a", [1.0]),
        ])
        .unwrap_err();
        assert!(matches!(err, TableError::DuplicateColumn(_)));
    }

    #[test]
    fn shape_and_schema() {
        let t = sample();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        let s = t.schema();
        assert_eq!(s.index_of("label"), Some(2));
        assert!(!s.field("id").unwrap().nullable);
    }

    #[test]
    fn add_drop_replace_rename() {
        let mut t = sample();
        t.add_column(Column::from_bool("flag", [true, false, true, false]))
            .unwrap();
        assert_eq!(t.n_cols(), 4);
        assert!(t
            .add_column(Column::from_i64("flag", [1, 2, 3, 4]))
            .is_err());
        assert!(t.add_column(Column::from_i64("short", [1])).is_err());
        t.replace_column(Column::from_i64("id", [9, 8, 7, 6]))
            .unwrap();
        assert_eq!(t.get("id", 0).unwrap(), Value::Int(9));
        t.rename_column("flag", "is_set").unwrap();
        assert!(t.has_column("is_set"));
        let dropped = t.drop_column("is_set").unwrap();
        assert_eq!(dropped.name(), "is_set");
        assert!(t.drop_column("gone").is_err());
    }

    #[test]
    fn push_row_is_atomic_on_type_error() {
        let mut t = sample();
        let err = t.push_row(vec![Value::Int(5), Value::Str("oops".into()), Value::Null]);
        assert!(err.is_err());
        // No column grew.
        assert_eq!(t.n_rows(), 4);
        t.push_row(vec![Value::Int(5), Value::Float(0.2), Value::Null])
            .unwrap();
        assert_eq!(t.n_rows(), 5);
    }

    #[test]
    fn select_take_filter_head() {
        let t = sample();
        let s = t.select(&["label", "id"]).unwrap();
        assert_eq!(s.column_names(), vec!["label", "id"]);
        let taken = t.take(&[3, 0]).unwrap();
        assert_eq!(taken.get("id", 0).unwrap(), Value::Int(4));
        let f = t.filter(|row| row[2] == Value::Str("a".into()));
        assert_eq!(f.n_rows(), 2);
        assert_eq!(t.head(2).n_rows(), 2);
        assert_eq!(t.head(99).n_rows(), 4);
    }

    #[test]
    fn sort_orders_rows() {
        let t = sample().sort_by("score", false).unwrap();
        let scores: Vec<f64> = (0..t.n_rows())
            .map(|i| t.get("score", i).unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(scores, vec![0.1, 0.5, 0.7, 0.9]);
        let t = sample().sort_by("score", true).unwrap();
        assert_eq!(t.get("score", 0).unwrap(), Value::Float(0.9));
    }

    #[test]
    fn vstack_appends_rows() {
        let t = sample();
        let u = t.vstack(&t).unwrap();
        assert_eq!(u.n_rows(), 8);
        let reordered = t.select(&["score", "id", "label"]).unwrap();
        assert!(t.vstack(&reordered).is_err());
    }

    #[test]
    fn sample_is_deterministic_and_without_replacement() {
        let t = sample();
        let a = t.sample(3, 42);
        let b = t.sample(3, 42);
        assert_eq!(a, b);
        assert_eq!(a.n_rows(), 3);
        let ids: Vec<i64> = (0..3)
            .map(|i| a.get("id", i).unwrap().as_i64().unwrap())
            .collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "sampled without replacement");
        assert_eq!(t.sample(99, 1).n_rows(), 4);
    }

    #[test]
    fn sample_indices_match_sample() {
        let t = sample();
        let idx = t.sample_indices(3, 42);
        assert_eq!(idx.len(), 3);
        assert_eq!(t.take(&idx).unwrap(), t.sample(3, 42));
        assert_eq!(t.sample_indices(99, 1).len(), 4);
        assert!(Table::empty().sample_indices(5, 7).is_empty());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let t = sample();
        assert_eq!(t.fingerprint(), sample().fingerprint());
        let mut edited = t.clone();
        edited
            .column_mut("score")
            .unwrap()
            .set(0, Value::Null)
            .unwrap();
        assert_ne!(t.fingerprint(), edited.fingerprint());
        // Renames, reorders, and row slices all change the digest.
        let mut renamed = t.clone();
        renamed.column_mut("score").unwrap().set_name("points");
        assert_ne!(t.fingerprint(), renamed.fingerprint());
        let reordered = t.select(&["score", "id", "label"]).unwrap();
        assert_ne!(t.fingerprint(), reordered.fingerprint());
        let (head, _) = t.split_at(2).unwrap();
        assert_ne!(t.fingerprint(), head.fingerprint());
        // NaN payloads collapse; signed zeros stay distinct.
        let a = Table::new(vec![Column::from_f64("x", [f64::NAN])]).unwrap();
        let b = Table::new(vec![Column::from_f64(
            "x",
            [f64::from_bits(0x7FF8_0000_0000_0001)],
        )])
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let z = Table::new(vec![Column::from_f64("x", [0.0])]).unwrap();
        let nz = Table::new(vec![Column::from_f64("x", [-0.0])]).unwrap();
        assert_ne!(z.fingerprint(), nz.fingerprint());
    }

    #[test]
    fn split_at_partitions() {
        let (a, b) = sample().split_at(1).unwrap();
        assert_eq!(a.n_rows(), 1);
        assert_eq!(b.n_rows(), 3);
        assert!(sample().split_at(5).is_err());
    }

    #[test]
    fn row_key_distinguishes_null_from_empty() {
        let t = Table::new(vec![Column::from_opt_str("s", [Some(String::new()), None])]).unwrap();
        assert_ne!(t.row_key(0).unwrap(), t.row_key(1).unwrap());
    }

    #[test]
    fn drop_nulls_removes_rows_with_any_null() {
        let t = Table::new(vec![
            Column::from_opt_i64("a", [Some(1), None, Some(3)]),
            Column::from_opt_f64("b", [Some(1.0), Some(2.0), None]),
        ])
        .unwrap();
        assert_eq!(t.drop_nulls().n_rows(), 1);
        assert_eq!(t.total_null_count(), 2);
    }

    #[test]
    fn render_contains_headers_and_values() {
        let r = sample().render(2);
        assert!(r.contains("id"));
        assert!(r.contains("score"));
        assert!(r.contains("more rows"));
    }
}
