//! Scalar values and data types.
//!
//! A [`Value`] is a single cell of a table. Cells are dynamically typed at
//! the cell level but columns enforce a homogeneous [`DataType`]; `Null`
//! is permitted in any column.

use std::cmp::Ordering;
use std::fmt;

/// The data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (also used for categorical data).
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Whether the type is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A single dynamically typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value: ints and floats as `f64`, bools as 0/1.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; floats are truncated only if they are integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view (only for `Bool`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a raw textual token into the "narrowest" value type:
    /// empty/NA markers become `Null`, then bool, int, float, else string.
    pub fn infer_from_str(token: &str) -> Value {
        let t = token.trim();
        if t.is_empty()
            || t.eq_ignore_ascii_case("na")
            || t.eq_ignore_ascii_case("null")
            || t == "?"
        {
            return Value::Null;
        }
        if t.eq_ignore_ascii_case("true") {
            return Value::Bool(true);
        }
        if t.eq_ignore_ascii_case("false") {
            return Value::Bool(false);
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(t.to_string())
    }

    /// Total ordering used for sorting: Null < Bool < numbers < Str.
    /// Numbers of different types compare by numeric value; NaN sorts last
    /// among numbers.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let fa = a.as_f64().unwrap_or(f64::NAN);
                let fb = b.as_f64().unwrap_or(f64::NAN);
                fa.total_cmp(&fb)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_null_markers() {
        for t in ["", "  ", "NA", "na", "null", "NULL", "?"] {
            assert_eq!(Value::infer_from_str(t), Value::Null, "token {t:?}");
        }
    }

    #[test]
    fn infer_bool_int_float_str() {
        assert_eq!(Value::infer_from_str("true"), Value::Bool(true));
        assert_eq!(Value::infer_from_str("False"), Value::Bool(false));
        assert_eq!(Value::infer_from_str("42"), Value::Int(42));
        assert_eq!(Value::infer_from_str("-7"), Value::Int(-7));
        assert_eq!(Value::infer_from_str("3.25"), Value::Float(3.25));
        assert_eq!(Value::infer_from_str("1e3"), Value::Float(1000.0));
        assert_eq!(Value::infer_from_str("abc"), Value::Str("abc".into()));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
    }

    #[test]
    fn ordering_across_types() {
        let mut v = [
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Bool(true));
        assert_eq!(v[2], Value::Float(1.5));
        assert_eq!(v[3], Value::Int(2));
        assert_eq!(v[4], Value::Str("b".into()));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
    }

    #[test]
    fn display_round_trip_for_numbers() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn from_option() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(3i64).into();
        assert_eq!(v, Value::Int(3));
    }
}
