//! The full OpenBI loop of the paper's Figure 2:
//!
//! 1. Run the §3.1 experiment suite (phase 1 simple + phase 2 mixed
//!    data-quality criteria) on clean reference datasets to build the
//!    **DQ4DM knowledge base**.
//! 2. A "non-expert citizen" then brings a *new* degraded dataset; the
//!    advisor measures its quality profile and answers
//!    **"the best option is ALGORITHM X"**.
//! 3. The advice is followed, and the result is compared against what
//!    the user would have gotten from a naive default choice.
//!
//! Run with: `cargo run --release --example advisor_guided_mining`
//! (a couple of minutes in debug mode; use --release).

use openbi::datagen::{make_blobs, reference_datasets, BlobsConfig};
use openbi::experiment::{run_phase1, run_phase2, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{extract_rules, Advisor, SharedKnowledgeBase};
use openbi::mining::AlgorithmSpec;
use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi::quality::{Degradation, LabelNoiseInjector, MissingInjector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Step 1: build the knowledge base from controlled experiments.
    // ------------------------------------------------------------------
    let datasets: Vec<ExperimentDataset> = reference_datasets(11)
        .into_iter()
        .map(|(name, table, target)| ExperimentDataset::new(name, table, target))
        .collect();
    let config = ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::ZeroR,
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::DecisionTree {
                max_depth: 12,
                min_leaf: 2,
            },
            AlgorithmSpec::Knn { k: 5 },
        ],
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: 11,
        parallel: true,
        workers: 0,
        ..ExperimentConfig::default()
    };
    let kb = SharedKnowledgeBase::default();
    let criteria = [
        Criterion::Completeness,
        Criterion::LabelNoise,
        Criterion::Imbalance,
        Criterion::Dimensionality,
    ];
    let n1 = run_phase1(&datasets, &criteria, &config, &kb)?;
    println!("phase 1 (simple criteria): {n1} knowledge-base records");
    let n2 = run_phase2(
        &datasets,
        &[(Criterion::Completeness, Criterion::LabelNoise)],
        &config,
        &kb,
    )?;
    println!("phase 2 (mixed criteria):  {n2} knowledge-base records");
    let snapshot = kb.snapshot();

    // Distill human-readable guidance from the KB.
    println!("\nExtracted guidance rules:");
    for rule in extract_rules(&snapshot, 0.01, 5).into_iter().take(5) {
        println!("  - {}", rule.render());
    }

    // ------------------------------------------------------------------
    // Step 2: a citizen brings a NEW dataset with real quality problems.
    // ------------------------------------------------------------------
    let clean = make_blobs(&BlobsConfig {
        n_rows: 400,
        n_features: 5,
        n_classes: 3,
        class_separation: 2.5,
        seed: 999, // unseen by the experiments
    });
    let dirty = Degradation::new()
        .then(MissingInjector::mcar(0.25).exclude(["class"]))
        .then(LabelNoiseInjector::new("class", 0.10))
        .apply(&clean, 777)?;

    let pipeline_config = PipelineConfig {
        target: Some("class".into()),
        folds: 5,
        advisor: Advisor::default(),
        ..Default::default()
    };
    let outcome = run_pipeline(
        DataSource::Table {
            name: "citizen-upload".into(),
            table: dirty,
        },
        &pipeline_config,
        Some(&snapshot),
    )?;

    let advice = outcome.advice.as_ref().expect("KB was supplied");
    println!("\n{}", advice.headline());
    println!("{}\n", advice.explanation);
    let advised = outcome.evaluation.as_ref().expect("target configured");
    println!(
        "advised  {:<28} accuracy {:.3}  kappa {:.3}",
        advised.algorithm,
        advised.accuracy(),
        advised.kappa()
    );

    // ------------------------------------------------------------------
    // Step 3: compare against the naive default the citizen might pick.
    // ------------------------------------------------------------------
    let naive_config = PipelineConfig {
        fallback_algorithm: AlgorithmSpec::Knn { k: 5 },
        ..pipeline_config
    };
    let naive = run_pipeline(
        DataSource::Table {
            name: "citizen-upload".into(),
            table: outcome.raw.clone(),
        },
        &naive_config,
        None,
    )?;
    let naive_eval = naive.evaluation.expect("target configured");
    println!(
        "default  {:<28} accuracy {:.3}  kappa {:.3}",
        naive_eval.algorithm,
        naive_eval.accuracy(),
        naive_eval.kappa()
    );
    println!(
        "\nadvice gain: {:+.3} accuracy over the uninformed default",
        advised.accuracy() - naive_eval.accuracy()
    );
    Ok(())
}
