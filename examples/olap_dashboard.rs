//! A citizen-facing dashboard: reporting + OLAP analysis over an
//! open-data scenario (the "reporting, OLAP analysis, dashboards" triad
//! of the paper's §1), rendered as text.
//!
//! Run with: `cargo run --example olap_dashboard`

use openbi::datagen::air_quality;
use openbi::olap::{Cube, CubeOptions, Dashboard, Measure, QualityThresholds};
use openbi::quality::{measure_profile, MeasureOptions};
use openbi::table::{group_by, Aggregate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = air_quality(1_000, 7);
    let facts = scenario.table;

    let cube = Cube::new(
        facts.clone(),
        &["district", "traffic", "aqi_band"],
        vec![
            Measure::Mean("pm10".into()),
            Measure::Mean("no2".into()),
            Measure::Count("station".into()),
        ],
    )?;

    // A drill-down path: city → one district → its worst pollution band.
    let by_district = cube.rollup(&["district"])?;
    let harbor = cube.slice("district", "harbor")?;
    let harbor_by_traffic = harbor.rollup(&["traffic"])?;

    // A pm10 trend for one station, as a sparkline.
    let st0 = facts.filter(|row| row[0].to_string() == "ST000");
    let pm10_series: Vec<f64> = st0
        .column("pm10")?
        .to_f64_vec()
        .into_iter()
        .flatten()
        .collect();

    // Quality footer so the citizen knows how much to trust the charts.
    let profile = measure_profile(
        &facts,
        &MeasureOptions {
            target: Some("aqi_band".into()),
            exclude: vec!["station".into()],
            ..Default::default()
        },
    );

    let dashboard = Dashboard::new("City Air Quality — Open Data Dashboard")
        .text(format!(
            "{} station-day measurements across {} districts.",
            facts.n_rows(),
            by_district.n_rows()
        ))
        .rollup_chart(
            "mean PM10 by district",
            &cube,
            "district",
            &Measure::Mean("pm10".into()),
            36,
        )?
        .table("harbor district by traffic level", harbor_by_traffic, 10)
        // The sharded engine's quality-annotated rollup: each aggregate
        // cell carries its row support and null ratio, and thin or
        // null-heavy cells are flagged right in the report.
        .quality_rollup(
            "mean PM10 / NO2 by district x traffic (quality-flagged)",
            &cube,
            &["district", "traffic"],
            &QualityThresholds::default(),
            &CubeOptions::default(),
        )?
        .trend("PM10 trend at station ST000", &pm10_series)
        .text(format!(
            "data quality: completeness {:.1}%, class balance {:.2}, consistency {:.2}",
            profile.completeness * 100.0,
            profile.class_balance,
            profile.consistency
        ));
    print!("{}", dashboard.render());

    // A classical grouped report straight off the table layer, too.
    let worst = group_by(
        &facts,
        &["aqi_band"],
        &[
            Aggregate::Count("station".into()),
            Aggregate::Mean("pm10".into()),
            Aggregate::Max("pm10".into()),
        ],
    )?;
    println!("{}", worst.render(10));
    Ok(())
}
