//! Open-government scenario: a synthetic municipal-budget portal is
//! published as Linked Open Data, a citizen tabularizes it through the
//! common representation, mines association rules about overspending,
//! and shares the discovered rules back as LOD — both directions of the
//! OpenBI vision in one program.
//!
//! Run with: `cargo run --example open_government`

use openbi::datagen::{municipal_budget, scenario_to_lod};
use openbi::lod::{publish_rules, write_ntriples, Iri, PublishableRule, TabularizeOptions};
use openbi::metamodel::{catalog_from_lod, to_json};
use openbi::mining::preprocess::{discretize_all, BinStrategy};
use openbi::mining::Apriori;
use openbi::quality::{measure_profile, render_profile, MeasureOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "portal": a municipal budget published as LOD.
    let scenario = municipal_budget(600, 21);
    let graph = scenario_to_lod(&scenario, "http://openbi.org", 0.15, 3)?;
    println!(
        "portal graph: {} triples, {} terms",
        graph.len(),
        graph.term_count()
    );

    // Common representation (the paper's CWM-style model, §3.2.1).
    let row_class = Iri::new("http://openbi.org/dataset/municipal-budget/Row")?;
    let (catalog, mut tables) = catalog_from_lod(
        &graph,
        "city-portal",
        std::slice::from_ref(&row_class),
        &TabularizeOptions::default(),
    )?;
    let table = tables.remove(0);
    println!(
        "tabularized {} line items × {} attributes",
        table.n_rows(),
        table.n_cols()
    );
    // The model itself is a durable artifact.
    let model_json = to_json(&catalog)?;
    println!(
        "common representation: {} bytes of model JSON",
        model_json.len()
    );

    // Quality annotation (§3.2.2).
    let opts = MeasureOptions {
        target: Some("overspend".into()),
        exclude: vec!["iri".into(), "id".into()],
        ..Default::default()
    };
    let profile = measure_profile(&table, &opts);
    print!(
        "{}",
        render_profile("municipal-budget (from LOD)", &profile)
    );

    // Mine association rules about overspending.
    let for_rules = table.select(&["district", "category", "headcount", "overspend"])?;
    let discretized = discretize_all(&for_rules, 3, BinStrategy::EqualFrequency, &[])?;
    let apriori = Apriori {
        min_support: 0.05,
        min_confidence: 0.65,
        max_len: 3,
    };
    let rules = apriori.mine_rules(&discretized)?;
    let interesting: Vec<_> = rules
        .iter()
        .filter(|r| r.consequent.iter().any(|c| c.starts_with("overspend=")) && r.lift > 1.1)
        .take(8)
        .collect();
    println!("\ntop overspend rules (of {} mined):", rules.len());
    for r in &interesting {
        println!("  {}  [quality {:.2}]", r.render(), r.quality_score());
    }

    // Share the acquired knowledge back as LOD.
    let publishable: Vec<PublishableRule> = interesting
        .iter()
        .map(|r| PublishableRule {
            antecedent: r.antecedent.join(" & "),
            consequent: r.consequent.join(" & "),
            support: r.support,
            confidence: r.confidence,
            lift: r.lift,
        })
        .collect();
    let published = publish_rules("http://openbi.org", "municipal-budget", &publishable)?;
    println!(
        "\npublished {} rule triples back as LOD, e.g.:",
        published.len()
    );
    for line in write_ntriples(&published).lines().take(6) {
        println!("  {line}");
    }
    Ok(())
}
