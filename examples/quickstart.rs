//! Quickstart: profile a messy CSV, get guided preprocessing and a
//! mining result, and publish everything back as Linked Open Data.
//!
//! Run with: `cargo run --example quickstart`

use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi::render_outcome;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small "open data" CSV as a citizen might download it: missing
    // cells, a duplicated record, inconsistent city names.
    let csv = "\
city,pm10,no2,traffic,aqi_band
Alicante,21.5,18.0,low,good
ALICANTE,44.0,39.0,high,poor
Elche,33.0,,medium,fair
elche ,35.5,30.0,medium,fair
Alcoy,12.0,10.5,low,good
Alcoy,12.0,10.5,low,good
Orihuela,48.0,41.0,high,poor
Torrevieja,,22.0,medium,fair
Benidorm,19.0,15.5,low,good
Denia,39.5,33.0,high,poor
Elda,14.0,12.0,low,good
Petrer,41.0,36.5,high,poor
";

    let source = DataSource::CsvText {
        name: "air-quality-sample".into(),
        content: csv.into(),
    };
    let config = PipelineConfig {
        target: Some("aqi_band".into()),
        exclude: vec!["city".into()],
        folds: 3,
        ..Default::default()
    };

    // No knowledge base yet: the pipeline still profiles, preprocesses,
    // mines with the fallback algorithm, and publishes LOD.
    let outcome = run_pipeline(source, &config, None)?;
    print!("{}", render_outcome(&outcome));

    // The published graph is real RDF — serialize a taste of it.
    let ntriples = openbi::lod::write_ntriples(&outcome.published);
    println!("First published triples:");
    for line in ntriples.lines().take(5) {
        println!("  {line}");
    }
    Ok(())
}
