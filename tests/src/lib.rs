//! Integration-test crate for the OpenBI workspace. All tests live under
//! `tests/tests/`; this library only hosts shared fixtures.

/// A deterministic messy CSV fixture used by several integration tests.
pub fn messy_csv() -> &'static str {
    "station,district,pm10,no2,traffic,aqi_band\n\
     ST001,north,21.5,18.0,low,good\n\
     ST002,NORTH,44.0,39.0,high,poor\n\
     ST003,south,33.0,,medium,fair\n\
     ST004,south,35.5,30.0,medium,fair\n\
     ST005,east,12.0,10.5,low,good\n\
     ST005,east,12.0,10.5,low,good\n\
     ST006,west,48.0,41.0,high,poor\n\
     ST007,west,,22.0,medium,fair\n\
     ST008,north,19.0,15.5,low,good\n\
     ST009,south,39.5,33.0,high,poor\n\
     ST010,east,14.0,12.0,low,good\n\
     ST011,west,41.0,36.5,high,poor\n"
}
