//! Integration of the advisor serving path on a real experiment-built
//! knowledge base: the indexed advise path must match the linear-scan
//! reference bitwise across (neighbors × bandwidth) settings, the
//! `advise_many` batch API must be deterministic, and the dataset-mask
//! view must reproduce the deep-clone leave-one-dataset-out path.

use openbi::experiment::{run_phase1, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{leave_one_dataset_out, Advisor, KnowledgeBase, SharedKnowledgeBase};
use openbi::mining::AlgorithmSpec;
use openbi::quality::QualityProfile;
use openbi_datagen::{make_blobs, BlobsConfig};

/// A small phase-1 KB: 2 datasets × 2 criteria × 3 severities × 3
/// algorithms = 36 records with real measured profiles.
fn experiment_kb() -> KnowledgeBase {
    let datasets: Vec<ExperimentDataset> = [11u64, 12]
        .iter()
        .map(|&seed| {
            ExperimentDataset::new(
                format!("serving-blobs-{seed}"),
                make_blobs(&BlobsConfig {
                    n_rows: 120,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 3.0,
                    seed,
                }),
                "class",
            )
        })
        .collect();
    let config = ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::ZeroR,
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::Knn { k: 5 },
        ],
        severities: vec![0.0, 0.5, 1.0],
        folds: 2,
        seed: 21,
        parallel: true,
        workers: 0,
        ..ExperimentConfig::default()
    };
    let kb = SharedKnowledgeBase::default();
    let n = run_phase1(
        &datasets,
        &[Criterion::Completeness, Criterion::LabelNoise],
        &config,
        &kb,
    )
    .unwrap();
    assert_eq!(n, 36);
    kb.snapshot()
}

fn query_profiles() -> Vec<QualityProfile> {
    vec![
        QualityProfile::default(),
        QualityProfile {
            completeness: 0.6,
            ..Default::default()
        },
        QualityProfile {
            label_noise_estimate: 0.35,
            class_balance: 0.4,
            ..Default::default()
        },
        QualityProfile {
            completeness: 0.8,
            outlier_ratio: 0.15,
            attr_noise_estimate: 0.2,
            ..Default::default()
        },
    ]
}

#[test]
fn indexed_path_matches_reference_on_experiment_kb() {
    let kb = experiment_kb();
    for profile in &query_profiles() {
        for neighbors in [1usize, 5, 25, 100] {
            for bandwidth in [0.05, 0.25, 1.0] {
                let advisor = Advisor {
                    neighbors,
                    bandwidth,
                };
                let indexed = advisor.advise(&kb, profile).unwrap();
                let reference = advisor.advise_reference(&kb, profile).unwrap();
                assert_eq!(
                    indexed, reference,
                    "divergence at neighbors {neighbors} bandwidth {bandwidth}"
                );
            }
        }
    }
}

#[test]
fn advise_many_is_deterministic_and_matches_single_queries() {
    let kb = experiment_kb();
    let profiles = query_profiles();
    let advisor = Advisor::default();
    let batch_a = advisor.advise_many(&kb, &profiles).unwrap();
    let batch_b = advisor.advise_many(&kb, &profiles).unwrap();
    assert_eq!(batch_a, batch_b, "batch advise must be deterministic");
    assert_eq!(batch_a.len(), profiles.len());
    for (profile, batched) in profiles.iter().zip(&batch_a) {
        assert_eq!(&advisor.advise(&kb, profile).unwrap(), batched);
    }
}

#[test]
fn masked_view_reproduces_cloned_leave_one_out() {
    let kb = experiment_kb();
    let advisor = Advisor::default();
    let profile = &query_profiles()[1];
    for dataset in kb.dataset_names() {
        let via_view = advisor
            .advise_view(&kb.view_without_dataset(dataset), profile)
            .unwrap();
        let via_clone = advisor
            .advise(&kb.without_dataset(dataset), profile)
            .unwrap();
        assert_eq!(via_view, via_clone, "holding out {dataset}");
    }
    // And the full evaluator stays well-behaved on top of the view path.
    let eval = leave_one_dataset_out(&kb, &advisor).unwrap();
    assert!(eval.decisions > 0);
    assert!(eval.mean_regret >= 0.0);
    assert!((0.0..=1.0).contains(&eval.top1_hit_rate));
}
