//! Integration of the repair & selection layers: record linkage fixes
//! injected duplicates+inconsistency, CFS selection undoes injected
//! dimensionality/redundancy, MDL discretization feeds rule mining, and
//! the Turtle writer round-trips published graphs.

use openbi::datagen::{make_blobs, municipal_budget, BlobsConfig};
use openbi::lod::{parse_turtle, publish_table, write_turtle, PrefixMap};
use openbi::mining::eval::crossval::cross_validate;
use openbi::mining::preprocess::mdl_discretize_column;
use openbi::mining::{cfs_select, project, AlgorithmSpec, Apriori, Instances};
use openbi::quality::{
    find_duplicate_clusters, measure_profile, merge_duplicates, Degradation, DuplicateInjector,
    InconsistencyInjector, IrrelevantInjector, LinkageConfig, MeasureOptions,
};

#[test]
fn record_linkage_repairs_injected_duplicates_despite_mangling() {
    // Clean scenario → inject near-duplicates AND format manglings, so
    // exact-match dedup would miss them — record linkage must not.
    let clean = municipal_budget(150, 3).table;
    let dirty = Degradation::new()
        .then(DuplicateInjector::near(0.2, 0.01).exclude(["district", "category", "overspend"]))
        .then(InconsistencyInjector::new(0.3))
        .apply(&clean, 5)
        .unwrap();
    let injected = dirty.n_rows() - clean.n_rows();
    assert!(injected > 20);
    // Exact-duplicate measurement sees almost nothing…
    let profile = measure_profile(&dirty, &MeasureOptions::default());
    assert!(
        profile.duplicate_ratio < 0.05,
        "exact dups {}",
        profile.duplicate_ratio
    );
    // …record linkage finds and merges the fuzzy pairs.
    let config = LinkageConfig {
        blocking_column: Some("district".into()),
        threshold: 0.05,
        ignore: vec!["id".into()],
    };
    let clusters = find_duplicate_clusters(&dirty, &config).unwrap();
    let clustered_rows: usize = clusters.iter().map(|c| c.len() - 1).sum();
    assert!(
        clustered_rows as f64 > injected as f64 * 0.5,
        "linkage found {clustered_rows} of {injected} injected dups"
    );
    let (merged, removed) = merge_duplicates(&dirty, &config).unwrap();
    assert_eq!(removed, clustered_rows);
    assert!(merged.n_rows() < dirty.n_rows());
    // Over-merge bound: relative to what the same linkage config already
    // collapses on the *clean* data (generated line items can legitimately
    // be near-identical), merging the dirty table must not lose more than
    // the injected rows plus a small slack for dup-of-near-dup chains.
    let (_, clean_removed) = merge_duplicates(&clean, &config).unwrap();
    let extra_removed = removed.saturating_sub(clean_removed);
    assert!(
        extra_removed <= injected + 10,
        "over-merged: removed {extra_removed} beyond the clean baseline for {injected} injected"
    );
}

#[test]
fn cfs_selection_recovers_knn_accuracy_under_dimensionality() {
    let clean = make_blobs(&BlobsConfig {
        n_rows: 240,
        n_features: 4,
        n_classes: 2,
        class_separation: 3.0,
        seed: 9,
    });
    let wide = Degradation::new()
        .then(IrrelevantInjector::gaussian(40))
        .apply(&clean, 11)
        .unwrap();
    let instances = Instances::from_table(&wide, Some("class"), &[]).unwrap();
    let baseline = cross_validate(&instances, &AlgorithmSpec::Knn { k: 5 }, 3, 1)
        .unwrap()
        .accuracy();
    let picked = cfs_select(&instances, 8).unwrap();
    // Selection keeps informative attributes, discards the noise.
    for &a in &picked {
        assert!(
            instances.attributes[a].name.starts_with('f'),
            "selected noise attribute {}",
            instances.attributes[a].name
        );
    }
    let reduced = project(&instances, &picked);
    let selected_acc = cross_validate(&reduced, &AlgorithmSpec::Knn { k: 5 }, 3, 1)
        .unwrap()
        .accuracy();
    assert!(
        selected_acc > baseline + 0.05,
        "selection {selected_acc} must beat wide baseline {baseline}"
    );
}

#[test]
fn mdl_discretization_feeds_sharper_rules_than_raw_numbers() {
    let scenario = municipal_budget(400, 7);
    let sub = scenario.table.select(&["headcount", "overspend"]).unwrap();
    let discretized = mdl_discretize_column(&sub, "headcount", "overspend").unwrap();
    // MDL found at least one cut: the column has >1 distinct bucket.
    let distinct = discretized.column("headcount").unwrap().distinct();
    assert!(distinct.len() >= 2, "buckets {distinct:?}");
    let apriori = Apriori {
        min_support: 0.1,
        min_confidence: 0.6,
        max_len: 2,
    };
    let rules = apriori.mine_rules(&discretized).unwrap();
    assert!(
        rules
            .iter()
            .any(|r| r.consequent.iter().any(|c| c.starts_with("overspend="))),
        "expected overspend rules from MDL buckets, got {} rules",
        rules.len()
    );
}

#[test]
fn turtle_output_round_trips_published_scenario() {
    let table = municipal_budget(40, 1).table;
    let graph = publish_table(&table, "http://openbi.org", "budget").unwrap();
    let ttl = write_turtle(&graph, &PrefixMap::default());
    assert!(ttl.contains("@prefix obi:"));
    assert!(ttl.contains(" a obi:Dataset"));
    let back = parse_turtle(&ttl).unwrap();
    assert_eq!(back.len(), graph.len());
    for t in graph.iter() {
        assert!(back.contains(&t));
    }
}

#[test]
fn knowledge_base_shares_as_lod_and_advises_after_import() {
    use openbi::experiment::{run_phase1, Criterion, ExperimentConfig, ExperimentDataset};
    use openbi::kb::{Advisor, SharedKnowledgeBase};
    use openbi::mining::AlgorithmSpec;
    use openbi::quality::QualityProfile;
    use openbi::{import_knowledge_base, publish_knowledge_base};

    // Build a tiny KB from real experiments…
    let dataset = ExperimentDataset::new(
        "blobs",
        make_blobs(&BlobsConfig {
            n_rows: 120,
            n_features: 3,
            n_classes: 2,
            class_separation: 3.0,
            seed: 2,
        }),
        "class",
    );
    let kb = SharedKnowledgeBase::default();
    run_phase1(
        &[dataset],
        &[Criterion::Completeness],
        &ExperimentConfig {
            algorithms: vec![AlgorithmSpec::ZeroR, AlgorithmSpec::NaiveBayes],
            severities: vec![0.0, 1.0],
            folds: 3,
            seed: 2,
            parallel: false,
            workers: 0,
            ..ExperimentConfig::default()
        },
        &kb,
    )
    .unwrap();
    let snapshot = kb.snapshot();
    // …share it as Turtle LOD, re-import on "another instance"…
    let graph = publish_knowledge_base(&snapshot, "http://openbi.org").unwrap();
    let ttl = write_turtle(&graph, &PrefixMap::default());
    let received = parse_turtle(&ttl).unwrap();
    let imported = import_knowledge_base(&received, "http://openbi.org").unwrap();
    assert_eq!(imported.len(), snapshot.len());
    // …and the imported knowledge still advises correctly.
    let advice = Advisor::default()
        .advise(&imported, &QualityProfile::default())
        .unwrap();
    assert_eq!(advice.best(), "NaiveBayes");
}
