//! Columnar-rewrite equivalence suite (DESIGN.md §11).
//!
//! The pre-rewrite row-major implementation is frozen in-tree as
//! `openbi::mining::reference` — the same `Vec<Vec<Option<f64>>>` layout
//! and kernel code that existed before the struct-of-arrays rewrite.
//! Every test here runs the identical workload through both
//! implementations **in the same process** and demands byte-identical
//! output: the same CV accuracies down to the f64 bit pattern, the same
//! pooled confusion matrices, the same holdout predictions, and the same
//! experiment-grid KB records at every worker count, across seeds
//! {7, 21, 42, 1042}. Nothing here is tolerance-based — a one-ULP drift
//! in any kernel fails the suite.
//!
//! Coverage is layered:
//!
//! 1. **Kernel + CV layer** — live `cross_validate` (zero-copy views)
//!    vs. `reference::cross_validate` (cloning `subset()` folds). Fold
//!    assignment is the same code path in both, so a mismatch is a
//!    kernel difference.
//! 2. **Holdout layer** — view-based `fit_view`/`predict_view` vs.
//!    reference training on materialized subsets of the same rows.
//! 3. **Grid layer** — the §3.1 experiment grid must produce the same
//!    KB bytes at workers 1 and 4. Combined with layer 1 (the grid's
//!    only layout-dependent computation is the CV it runs per cell)
//!    this pins the grid KB to the pre-rewrite bytes.

use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::SharedKnowledgeBase;
use openbi::mining::eval::crossval::{cross_validate_with, holdout_split, CrossValOptions};
use openbi::mining::{reference, AlgorithmSpec, Instances};
use openbi_datagen::{make_blobs, make_rule_based, BlobsConfig, RuleConfig};
use openbi_quality::{Degradation, MissingInjector};
use openbi_table::Table;

const SEEDS: [u64; 4] = [7, 21, 42, 1042];
const WORKERS: [usize; 2] = [1, 4];

/// The algorithm roster: every classifier kernel in the crate.
fn algorithms() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::ZeroR,
        AlgorithmSpec::OneR,
        AlgorithmSpec::NaiveBayes,
        AlgorithmSpec::Knn { k: 3 },
        AlgorithmSpec::DecisionTree {
            max_depth: 6,
            min_leaf: 2,
        },
        AlgorithmSpec::RandomForest {
            trees: 5,
            max_depth: 5,
            seed: 11,
        },
        AlgorithmSpec::Logistic {
            epochs: 12,
            learning_rate: 0.1,
        },
    ]
}

fn grid_datasets() -> Vec<ExperimentDataset> {
    [1u64, 2]
        .iter()
        .map(|&seed| {
            ExperimentDataset::new(
                format!("blobs-{seed}"),
                make_blobs(&BlobsConfig {
                    n_rows: 120,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 3.0,
                    seed,
                }),
                "class",
            )
        })
        .collect()
}

fn grid_config(seed: u64, workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: algorithms(),
        severities: vec![0.0, 1.0],
        folds: 2,
        seed,
        parallel: workers > 1,
        workers,
        ..ExperimentConfig::default()
    }
}

/// Serialize a KB into an order-independent, timing-free fingerprint
/// (`train_ms` is the only wall-clock field in a record).
fn kb_fingerprint(kb: &SharedKnowledgeBase) -> Vec<String> {
    let mut keys: Vec<String> = kb
        .snapshot()
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.metrics.train_ms = 0.0;
            serde_json::to_string(&r).unwrap()
        })
        .collect();
    keys.sort();
    keys
}

fn run_grid_fingerprint(seed: u64, workers: usize) -> Vec<String> {
    let kb = SharedKnowledgeBase::default();
    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    let report = run_phase1_report(
        &grid_datasets(),
        &criteria,
        &grid_config(seed, workers),
        &kb,
    )
    .unwrap();
    assert!(
        report.failures.is_empty(),
        "seed {seed}, {workers} workers: grid must run clean"
    );
    kb_fingerprint(&kb)
}

/// The two direct-CV datasets: Gaussian blobs with 25% MCAR missing
/// cells (exercises every missing-value path), and the rule-based set
/// with a nominal `region` attribute (exercises the categorical paths).
fn cv_tables(seed: u64) -> Vec<(String, Table, String)> {
    let blobs = make_blobs(&BlobsConfig {
        n_rows: 150,
        n_features: 5,
        n_classes: 3,
        class_separation: 2.5,
        seed: 5,
    });
    let degraded = Degradation::new()
        .then(MissingInjector::mcar(0.25).exclude(["class"]))
        .apply(&blobs, seed)
        .unwrap();
    let rules = make_rule_based(&RuleConfig {
        n_rows: 150,
        n_noise_features: 2,
        seed: 9,
    });
    vec![
        ("blobs-mcar".into(), degraded, "class".into()),
        ("rules".into(), rules, "class".into()),
    ]
}

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Every classifier's CV accuracies, confusion matrix, and model size
/// must match the frozen row-major reference to the exact bit — with the
/// live side running both sequentially and with a worker pool.
#[test]
fn cv_results_are_bitwise_identical_to_reference() {
    for seed in SEEDS {
        for (name, table, target) in cv_tables(seed) {
            let live = Instances::from_table(&table, Some(&target), &[]).unwrap();
            let frozen = reference::Instances::from_table(&table, Some(&target), &[]).unwrap();
            for spec in algorithms() {
                let old = reference::cross_validate(&frozen, &spec, 3, seed).unwrap();
                for parallel in [false, true] {
                    let opts = if parallel {
                        CrossValOptions::parallel()
                    } else {
                        CrossValOptions::default()
                    };
                    let new = cross_validate_with(&live, &spec, 3, seed, &opts).unwrap();
                    let ctx = format!("seed {seed}, dataset {name}, {spec}, parallel={parallel}");
                    assert_eq!(new.algorithm, old.algorithm, "{ctx}: algorithm label");
                    assert_eq!(
                        new.fold_accuracies
                            .iter()
                            .map(|&a| bits(a))
                            .collect::<Vec<_>>(),
                        old.fold_accuracies
                            .iter()
                            .map(|&a| bits(a))
                            .collect::<Vec<_>>(),
                        "{ctx}: per-fold accuracy bits drifted from the row-major reference"
                    );
                    assert_eq!(
                        bits(new.accuracy()),
                        bits(old.accuracy()),
                        "{ctx}: pooled accuracy bits drifted"
                    );
                    assert_eq!(
                        bits(new.model_size),
                        bits(old.model_size),
                        "{ctx}: model size drifted"
                    );
                    assert_eq!(
                        new.confusion, old.confusion,
                        "{ctx}: confusion matrix drifted"
                    );
                }
            }
        }
    }
}

/// View-based holdout training must predict exactly what the reference
/// predicts after training on a materialized copy of the same rows.
#[test]
fn holdout_predictions_are_identical_to_reference() {
    for seed in SEEDS {
        for (name, table, target) in cv_tables(seed) {
            let live = Instances::from_table(&table, Some(&target), &[]).unwrap();
            let frozen = reference::Instances::from_table(&table, Some(&target), &[]).unwrap();
            let (train, test) = holdout_split(&live, 0.3, seed).unwrap();
            let train_rows: Vec<usize> = (0..train.len()).map(|i| train.base_row(i)).collect();
            let test_rows: Vec<usize> = (0..test.len()).map(|i| test.base_row(i)).collect();
            for spec in algorithms() {
                let mut new_model = spec.build();
                new_model.fit_view(&train).unwrap();
                let new_preds = new_model.predict_view(&test).unwrap();
                let mut old_model = reference::build(&spec);
                old_model.fit(&frozen.subset(&train_rows)).unwrap();
                let old_preds = old_model.predict(&frozen.subset(&test_rows)).unwrap();
                assert_eq!(
                    new_preds, old_preds,
                    "seed {seed}, dataset {name}, {spec}: holdout predictions drifted"
                );
            }
        }
    }
}

/// The experiment grid must produce the same KB bytes at every worker
/// count — one Table→Instances conversion per cell, zero-copy folds, and
/// a work-stealing pool must not change a single record.
#[test]
fn grid_kb_is_byte_identical_across_worker_counts() {
    for seed in SEEDS {
        let mut fingerprints = WORKERS.iter().map(|&w| run_grid_fingerprint(seed, w));
        let baseline = fingerprints.next().unwrap();
        assert!(
            !baseline.is_empty(),
            "seed {seed}: grid produced no KB records"
        );
        for (w, fp) in WORKERS[1..].iter().zip(fingerprints) {
            assert_eq!(
                fp.len(),
                baseline.len(),
                "seed {seed}, {w} workers: record count drifted"
            );
            for (i, (a, e)) in fp.iter().zip(&baseline).enumerate() {
                assert_eq!(
                    a, e,
                    "seed {seed}, {w} workers: KB record {i} drifted from the 1-worker bytes"
                );
            }
        }
    }
}
