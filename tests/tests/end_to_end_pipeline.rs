//! End-to-end pipeline integration: CSV and LOD sources through the full
//! Figure-2 flow, including knowledge-base-driven advice and LOD
//! publication round trips.

use openbi::kb::{ExperimentRecord, KnowledgeBase, PerfMetrics};
use openbi::lod::{parse_ntriples, tabularize, write_ntriples, Iri, TabularizeOptions, Term};
use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi::quality::QualityProfile;
use openbi_datagen::{air_quality, scenario_to_lod};
use openbi_integration::messy_csv;

fn csv_config() -> PipelineConfig {
    PipelineConfig {
        target: Some("aqi_band".into()),
        exclude: vec!["station".into()],
        folds: 3,
        ..Default::default()
    }
}

#[test]
fn csv_pipeline_cleans_and_classifies() {
    let outcome = run_pipeline(
        DataSource::CsvText {
            name: "messy".into(),
            content: messy_csv().into(),
        },
        &csv_config(),
        None,
    )
    .unwrap();
    // The raw profile shows the planted defects.
    assert!(outcome.profile.completeness < 1.0);
    assert!(outcome.profile.duplicate_ratio > 0.0);
    assert!(outcome.profile.consistency < 1.0, "NORTH vs north");
    // Preprocessing fixed them.
    assert!(outcome.profile_after.completeness > outcome.profile.completeness);
    assert_eq!(outcome.profile_after.duplicate_ratio, 0.0);
    // Consistency may shift marginally when dedup changes the value mix,
    // but must not collapse.
    assert!(outcome.profile_after.consistency >= outcome.profile.consistency - 0.05);
    // Mining succeeded on the planted pm10→band pattern.
    let eval = outcome.evaluation.unwrap();
    assert!(eval.accuracy() > 0.6, "accuracy {}", eval.accuracy());
}

#[test]
fn published_lod_round_trips_to_equivalent_table() {
    let outcome = run_pipeline(
        DataSource::CsvText {
            name: "messy".into(),
            content: messy_csv().into(),
        },
        &csv_config(),
        None,
    )
    .unwrap();
    // Serialize to N-Triples text, parse back, re-tabularize.
    let text = write_ntriples(&outcome.published);
    let graph = parse_ntriples(&text).unwrap();
    let row_class = Iri::new("http://openbi.org/dataset/messy/Row").unwrap();
    let opts = TabularizeOptions {
        include_iri: false,
        ..Default::default()
    };
    let back = tabularize(&graph, &row_class, &opts).unwrap();
    assert_eq!(back.n_rows(), outcome.preprocessed.n_rows());
    // Every column that survived preprocessing (DropCorrelated removes
    // no2, which is nearly collinear with pm10) must round-trip.
    for col in outcome.preprocessed.column_names() {
        assert!(back.has_column(col), "column {col} lost in round trip");
    }
    assert!(back.has_column("pm10"));
    assert!(back.has_column("aqi_band"));
    // Quality measurements are also in the published graph.
    let qm = graph.subjects_of_type(&openbi::lod::vocab::obi::quality_measurement());
    assert!(!qm.is_empty());
}

#[test]
fn lod_pipeline_consumes_generated_portal() {
    let scenario = air_quality(150, 5);
    let graph = scenario_to_lod(&scenario, "http://openbi.org", 0.3, 7).unwrap();
    let outcome = run_pipeline(
        DataSource::Lod {
            name: "portal".into(),
            graph,
            class: Iri::new("http://openbi.org/dataset/air-quality/Row").unwrap(),
        },
        &PipelineConfig {
            target: Some("aqi_band".into()),
            folds: 3,
            ..Default::default()
        },
        None,
    )
    .unwrap();
    assert_eq!(outcome.raw.n_rows(), 150);
    // sameAs/seeAlso links become extra columns or are dropped — either
    // way the core attributes survive.
    assert!(outcome.raw.has_column("pm10"));
    let eval = outcome.evaluation.unwrap();
    assert!(eval.accuracy() > 0.7, "accuracy {}", eval.accuracy());
    // The catalog records LOD provenance.
    let cs = outcome.catalog.find_column_set("Row").unwrap();
    assert!(matches!(
        cs.provenance,
        openbi::metamodel::Provenance::Lod { .. }
    ));
}

#[test]
fn knowledge_base_steers_algorithm_choice() {
    let mut kb = KnowledgeBase::new();
    let mk = |algo: &str, acc: f64| ExperimentRecord {
        dataset: "prior".into(),
        degradations: vec![],
        profile: QualityProfile::default(),
        algorithm: algo.into(),
        metrics: PerfMetrics {
            accuracy: acc,
            macro_f1: acc,
            minority_f1: acc,
            kappa: acc,
            train_ms: 1.0,
            model_size: 1.0,
        },
        seed: 0,
    };
    for _ in 0..5 {
        kb.add(mk("DecisionTree(depth=12,leaf=2)", 0.9));
        kb.add(mk("NaiveBayes", 0.5));
    }
    let outcome = run_pipeline(
        DataSource::CsvText {
            name: "messy".into(),
            content: messy_csv().into(),
        },
        &csv_config(),
        Some(&kb),
    )
    .unwrap();
    assert_eq!(
        outcome.advice.as_ref().unwrap().best(),
        "DecisionTree(depth=12,leaf=2)"
    );
    assert_eq!(
        outcome.chosen_algorithm.unwrap().to_string(),
        "DecisionTree(depth=12,leaf=2)"
    );
    // The advice is also published as LOD.
    let advice_nodes = outcome
        .published
        .subjects_of_type(&openbi::lod::vocab::obi::advice());
    assert_eq!(advice_nodes.len(), 2);
    let best = Term::iri("http://openbi.org/dataset/messy/advice/0");
    let alg = outcome.published.objects(
        &best,
        &Term::Iri(openbi::lod::vocab::obi::recommended_algorithm()),
    );
    assert_eq!(
        alg[0].as_literal().unwrap().lexical,
        "DecisionTree(depth=12,leaf=2)"
    );
}

#[test]
fn phase_timings_cover_all_phases() {
    let outcome = run_pipeline(
        DataSource::CsvText {
            name: "messy".into(),
            content: messy_csv().into(),
        },
        &csv_config(),
        None,
    )
    .unwrap();
    let phases: Vec<&str> = outcome
        .phase_timings
        .iter()
        .map(|(p, _)| p.as_str())
        .collect();
    assert_eq!(
        phases,
        vec![
            "ingest+represent",
            "quality-annotation",
            "advice",
            "preprocessing",
            "mining",
            "publish-lod"
        ]
    );
    assert!(outcome.phase_timings.iter().all(|(_, ms)| *ms >= 0.0));
}
