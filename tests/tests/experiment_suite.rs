//! Integration of the §3.1 experiment protocol: phase 1 + phase 2 on a
//! real generated dataset, knowledge-base persistence, advisor
//! evaluation, and the qualitative shapes the paper's companion study
//! predicts.

use openbi::experiment::{
    evaluate_variant, run_phase1, run_phase2, Criterion, ExperimentConfig, ExperimentDataset,
};
use openbi::kb::{
    extract_rules, leave_one_dataset_out, Advisor, KnowledgeBase, SharedKnowledgeBase,
};
use openbi::mining::AlgorithmSpec;
use openbi_datagen::{make_blobs, BlobsConfig};

fn dataset(seed: u64) -> ExperimentDataset {
    ExperimentDataset::new(
        format!("blobs-{seed}"),
        make_blobs(&BlobsConfig {
            n_rows: 150,
            n_features: 4,
            n_classes: 2,
            class_separation: 3.0,
            seed,
        }),
        "class",
    )
}

fn config() -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::ZeroR,
            AlgorithmSpec::NaiveBayes,
            AlgorithmSpec::Knn { k: 5 },
        ],
        severities: vec![0.0, 0.5, 1.0],
        folds: 3,
        seed: 3,
        parallel: true,
        workers: 0,
        ..ExperimentConfig::default()
    }
}

#[test]
fn full_protocol_builds_a_useful_kb() {
    let datasets = vec![dataset(1), dataset(2), dataset(3)];
    let kb = SharedKnowledgeBase::default();
    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    let n1 = run_phase1(&datasets, &criteria, &config(), &kb).unwrap();
    // 3 datasets × 2 criteria × 3 severities × 3 algorithms.
    assert_eq!(n1, 54);
    let n2 = run_phase2(
        &datasets,
        &[(Criterion::Completeness, Criterion::LabelNoise)],
        &config(),
        &kb,
    )
    .unwrap();
    // 3 datasets × (3×3−1) combos × 3 algorithms.
    assert_eq!(n2, 72);
    let snapshot = kb.snapshot();
    assert_eq!(snapshot.len(), 126);

    // Persistence round trip.
    let jsonl = snapshot.to_jsonl().unwrap();
    let restored = KnowledgeBase::from_jsonl(&jsonl).unwrap();
    assert_eq!(restored.len(), snapshot.len());

    // Qualitative shape: the clean baseline beats the fully degraded
    // variant for every real algorithm.
    for algo in ["NaiveBayes", "kNN(k=5)"] {
        let clean: Vec<f64> = snapshot
            .filter(|r| r.algorithm == algo && r.degradations.is_empty())
            .iter()
            .map(|r| r.metrics.accuracy)
            .collect();
        let degraded: Vec<f64> = snapshot
            .filter(|r| {
                r.algorithm == algo
                    && r.degradations
                        .iter()
                        .any(|d| d.contains("35%") || d.contains("0.40"))
            })
            .iter()
            .map(|r| r.metrics.accuracy)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&clean) > mean(&degraded),
            "{algo}: clean {} vs degraded {}",
            mean(&clean),
            mean(&degraded)
        );
    }

    // The advisor generalizes across datasets (leave-one-dataset-out).
    let eval = leave_one_dataset_out(&snapshot, &Advisor::default()).unwrap();
    assert!(eval.decisions > 0);
    assert!(
        eval.mean_regret <= eval.baseline_regret + 0.02,
        "advisor regret {} should not exceed static baseline {}",
        eval.mean_regret,
        eval.baseline_regret
    );

    // Guidance rules can be extracted without panicking (content depends
    // on which algorithm dominates overall).
    let _ = extract_rules(&snapshot, 0.0, 1);
}

/// The cell-level executor's determinism guarantee: a seeded phase-1
/// run yields the same knowledge-base records whether it runs
/// sequentially, on one worker, or on eight. Cell seeds derive from the
/// grid position (never the worker), so only record *order* and the
/// wall-clock `train_ms` field may differ.
#[test]
fn executor_is_deterministic_across_worker_counts() {
    let datasets = vec![dataset(1), dataset(2)];
    let criteria = [
        Criterion::Completeness,
        Criterion::LabelNoise,
        Criterion::Imbalance,
    ];
    let run = |parallel: bool, workers: usize| {
        let kb = SharedKnowledgeBase::default();
        let cfg = ExperimentConfig {
            parallel,
            workers,
            ..config()
        };
        run_phase1(&datasets, &criteria, &cfg, &kb).unwrap();
        let mut keys: Vec<String> = kb
            .snapshot()
            .records()
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.metrics.train_ms = 0.0; // wall-clock: the only timing field
                serde_json::to_string(&r).unwrap()
            })
            .collect();
        keys.sort();
        keys
    };
    let sequential = run(false, 1);
    let one_worker = run(true, 1);
    let eight_workers = run(true, 8);
    assert_eq!(sequential.len(), 54);
    assert_eq!(sequential, one_worker, "workers=1 must match sequential");
    assert_eq!(sequential, eight_workers, "workers=8 must match sequential");
}

#[test]
fn imbalance_hurts_minority_f1_more_than_accuracy() {
    // Overlapping classes: with a clean boundary even 95:5 imbalance
    // costs nothing, so use a hard dataset where the prior can dominate.
    let d = ExperimentDataset::new(
        "blobs-overlap",
        make_blobs(&BlobsConfig {
            n_rows: 300,
            n_features: 3,
            n_classes: 2,
            class_separation: 1.0,
            seed: 77,
        }),
        "class",
    );
    let kb = SharedKnowledgeBase::default();
    let cfg = ExperimentConfig {
        algorithms: vec![AlgorithmSpec::DecisionTree {
            max_depth: 10,
            min_leaf: 2,
        }],
        folds: 3,
        seed: 5,
        parallel: false,
        workers: 0,
        severities: vec![],
        ..ExperimentConfig::default()
    };
    let clean = evaluate_variant(
        &d,
        &Criterion::Imbalance.degradation(0.0, &d).unwrap(),
        &cfg,
        1,
        &kb,
    )
    .unwrap();
    let skewed = evaluate_variant(
        &d,
        &Criterion::Imbalance.degradation(1.0, &d).unwrap(),
        &cfg,
        1,
        &kb,
    )
    .unwrap();
    let (_, clean_eval) = &clean[0];
    let (_, skew_eval) = &skewed[0];
    let acc_drop = clean_eval.accuracy() - skew_eval.accuracy();
    let f1_drop = clean_eval.minority_f1() - skew_eval.minority_f1();
    assert!(
        f1_drop > acc_drop + 0.02,
        "minority F1 must collapse faster: f1_drop {f1_drop} vs acc_drop {acc_drop}"
    );
    assert!(
        f1_drop > 0.1,
        "f1_drop {f1_drop} too small to show the defect"
    );
}

#[test]
fn dimensionality_hurts_knn_more_than_tree() {
    let d = dataset(9);
    let kb = SharedKnowledgeBase::default();
    let cfg = ExperimentConfig {
        algorithms: vec![
            AlgorithmSpec::Knn { k: 5 },
            AlgorithmSpec::DecisionTree {
                max_depth: 10,
                min_leaf: 2,
            },
        ],
        folds: 3,
        seed: 5,
        parallel: false,
        workers: 0,
        severities: vec![],
        ..ExperimentConfig::default()
    };
    let run = |severity: f64| {
        evaluate_variant(
            &d,
            &Criterion::Dimensionality.degradation(severity, &d).unwrap(),
            &cfg,
            2,
            &kb,
        )
        .unwrap()
    };
    let clean = run(0.0);
    let wide = run(1.0);
    let drop = |algo_idx: usize| clean[algo_idx].1.accuracy() - wide[algo_idx].1.accuracy();
    let knn_drop = drop(0);
    let tree_drop = drop(1);
    assert!(
        knn_drop > tree_drop - 0.02,
        "kNN should suffer at least as much as the tree: knn {knn_drop} vs tree {tree_drop}"
    );
    assert!(
        knn_drop > 0.05,
        "48 noise columns must hurt kNN, drop {knn_drop}"
    );
}
