//! Chaos suite for the fault-injection subsystem (DESIGN.md §10).
//!
//! The headline guarantee: because fault decisions are pure hashes of
//! `(plan seed, rule, scope key)` and cell seeds derive from the grid
//! position, a faulted run that retries to success produces a knowledge
//! base **byte-identical** to the fault-free run — at every worker
//! count. The suite also proves the per-cell deadline bounds hung
//! cells, the pipeline degrades instead of aborting, the KB store's
//! injection points surface and recover, and the sharded OLAP cube
//! (DESIGN.md §14) retries shard faults to a byte-identical cube or
//! degrades to an explicitly flagged partial one.
//!
//! CI's `chaos` step sweeps a seed matrix through these tests via
//! `OPENBI_CHAOS_SEEDS` / `OPENBI_CHAOS_WORKERS` (comma-separated);
//! unset, a single fast seed runs locally.

use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::SharedKnowledgeBase;
use openbi::mining::AlgorithmSpec;
use openbi::olap::{
    quality_table_report, Cube, CubeOptions, Measure, QualityThresholds, CUBE_BUILD_FAULT_POINT,
};
use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi_datagen::{make_blobs, BlobsConfig};
use openbi_faults::{FaultPlan, FaultRule};
use std::sync::Arc;
use std::time::Duration;

fn env_list(var: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn chaos_seeds() -> Vec<u64> {
    env_list("OPENBI_CHAOS_SEEDS", &[7])
}

fn chaos_workers() -> Vec<usize> {
    env_list("OPENBI_CHAOS_WORKERS", &[1, 4])
        .into_iter()
        .map(|w| w as usize)
        .collect()
}

fn datasets() -> Vec<ExperimentDataset> {
    [1u64, 2]
        .iter()
        .map(|&seed| {
            ExperimentDataset::new(
                format!("blobs-{seed}"),
                make_blobs(&BlobsConfig {
                    n_rows: 120,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 3.0,
                    seed,
                }),
                "class",
            )
        })
        .collect()
}

fn config(seed: u64, workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![AlgorithmSpec::ZeroR, AlgorithmSpec::NaiveBayes],
        severities: vec![0.0, 1.0],
        folds: 2,
        seed,
        parallel: true,
        workers,
        retry_backoff: Duration::ZERO,
        ..ExperimentConfig::default()
    }
}

/// Serialize a KB into an order-independent, timing-free fingerprint
/// (the executor-determinism pattern: `train_ms` is the only wall-clock
/// field in a record).
fn kb_fingerprint(kb: &openbi::kb::KnowledgeBase) -> Vec<String> {
    let mut keys: Vec<String> = kb
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.metrics.train_ms = 0.0;
            serde_json::to_string(&r).unwrap()
        })
        .collect();
    keys.sort();
    keys
}

/// A plan that fails every cell's first attempt, plus two retries of
/// budget, must converge to the exact fault-free knowledge base — for
/// every seed in the matrix and every worker count.
#[test]
fn retried_faults_leave_the_kb_byte_identical() {
    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    for seed in chaos_seeds() {
        let baseline_kb = SharedKnowledgeBase::default();
        let baseline =
            run_phase1_report(&datasets(), &criteria, &config(seed, 1), &baseline_kb).unwrap();
        assert!(baseline.failures.is_empty(), "baseline must be fault-free");
        let expected = kb_fingerprint(&baseline_kb.snapshot());
        assert!(!expected.is_empty());

        for workers in chaos_workers() {
            let plan = Arc::new(FaultPlan::new(seed).with(FaultRule::error("grid.cell.run")));
            let cfg = ExperimentConfig {
                max_retries: 2,
                fault_plan: Some(plan),
                ..config(seed, workers)
            };
            let kb = SharedKnowledgeBase::default();
            let report = run_phase1_report(&datasets(), &criteria, &cfg, &kb).unwrap();
            assert!(
                report.failures.is_empty(),
                "seed {seed}, {workers} workers: every cell must retry to success, got {:?}",
                report.failures
            );
            assert_eq!(report.cells_succeeded, report.cells_attempted());
            assert_eq!(
                report.total_retries(),
                report.cells,
                "seed {seed}: each cell fails exactly its first attempt"
            );
            assert_eq!(
                kb_fingerprint(&kb.snapshot()),
                expected,
                "seed {seed}, {workers} workers: faulted KB diverged from fault-free KB"
            );
        }
    }
}

/// Cells that hang past the deadline are abandoned and reported — the
/// grid finishes instead of stalling a worker forever.
#[test]
fn deadline_abandons_hung_cells_without_stalling_the_grid() {
    let plan =
        Arc::new(FaultPlan::new(3).with(FaultRule::delay("grid.cell.run", 2_000).times(u32::MAX)));
    let cfg = ExperimentConfig {
        severities: vec![0.5],
        cell_deadline: Some(Duration::from_millis(50)),
        fault_plan: Some(plan),
        ..config(13, 2)
    };
    let kb = SharedKnowledgeBase::default();
    let started = std::time::Instant::now();
    let report = run_phase1_report(&datasets(), &[Criterion::Completeness], &cfg, &kb).unwrap();
    assert_eq!(report.cells_succeeded, 0);
    assert_eq!(report.failures.len(), report.cells_attempted());
    for f in &report.failures {
        assert!(f.error.contains("deadline"), "{}", f.error);
        assert_eq!(f.attempts, 1, "no retry budget: one attempt per cell");
    }
    assert_eq!(kb.snapshot().len(), 0, "abandoned cells must not publish");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the grid must not wait out every injected 2 s delay serially"
    );
}

/// A failing quality stage degrades the Figure-2 pipeline — the run
/// completes with an explicit `Degraded` marker, unannotated advice
/// context, and a mining result — instead of aborting.
#[test]
fn pipeline_degrades_instead_of_aborting() {
    let source = DataSource::CsvText {
        name: "chaos-demo".into(),
        content: "a,b,label\n1,x,p\n2,y,q\n3,x,p\n4,y,q\n5,x,p\n6,y,q\n".into(),
    };
    let plan = Arc::new(FaultPlan::new(5).with(FaultRule::error("pipeline.stage.quality")));
    let cfg = PipelineConfig {
        target: Some("label".into()),
        folds: 2,
        fault_plan: Some(plan),
        ..Default::default()
    };
    let outcome = run_pipeline(source, &cfg, None).unwrap();
    assert!(outcome.is_degraded());
    assert_eq!(outcome.degraded.len(), 1);
    assert_eq!(outcome.degraded[0].stage, "quality");
    assert!(
        outcome.degraded[0].error.contains("injected fault"),
        "{}",
        outcome.degraded[0].error
    );
    assert!(
        outcome.evaluation.is_some(),
        "mining must still run on a degraded profile"
    );
    let report = openbi::render_outcome(&outcome);
    assert!(report.contains("DEGRADED RUN"), "{report}");
}

/// The quality stage runs twice per pipeline — the raw profile in phase
/// 2 (attempt 0) and the post-preprocessing re-measure in phase 4
/// (attempt 1) — and **both** occurrences sit inside the degradation
/// harness. A rule with two firings of budget must degrade both, leave
/// `profile_after` at the phase-2 fallback it was cloned from, and still
/// finish the run.
#[test]
fn quality_faults_in_both_phases_degrade_twice_and_complete() {
    let source = DataSource::CsvText {
        name: "chaos-demo-2".into(),
        content: "a,b,label\n1,x,p\n2,y,q\n3,x,p\n4,y,q\n5,x,p\n6,y,q\n".into(),
    };
    let plan =
        Arc::new(FaultPlan::new(5).with(FaultRule::error("pipeline.stage.quality").times(2)));
    let cfg = PipelineConfig {
        target: Some("label".into()),
        folds: 2,
        fault_plan: Some(plan),
        ..Default::default()
    };
    let outcome = run_pipeline(source, &cfg, None).unwrap();
    let quality_degradations: Vec<_> = outcome
        .degraded
        .iter()
        .filter(|d| d.stage == "quality")
        .collect();
    assert_eq!(
        quality_degradations.len(),
        2,
        "phase 2 and phase 4 must each record a quality degradation: {:?}",
        outcome.degraded
    );
    assert!(
        quality_degradations[1].fallback.contains("reused"),
        "phase 4 falls back to the pre-preprocessing profile: {:?}",
        quality_degradations[1].fallback
    );
    // Phase 2 fell back to the default profile and phase 4 reused it, so
    // both sides of the before/after comparison are the same fallback.
    assert_eq!(outcome.profile, outcome.profile_after);
    assert!(
        outcome.evaluation.is_some(),
        "mining must still run after a double quality degradation"
    );
}

/// The knowledge-base store's injection points are reached through the
/// process-global slot, surface as ordinary I/O errors, and disappear
/// on uninstall. Install/uninstall stay inside this one test; the plan
/// only matches `kb.store.*`, so concurrent tests in this binary (which
/// never touch the store) cannot observe it.
#[test]
fn store_io_faults_surface_and_recover() {
    let dir = std::env::temp_dir().join("openbi-chaos-store");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kb.jsonl");
    let kb = SharedKnowledgeBase::default().snapshot();

    kb.save(&path).expect("fault-free save succeeds");

    let plan = Arc::new(
        FaultPlan::new(9)
            .with(FaultRule::error("kb.store.save").times(u32::MAX))
            .with(FaultRule::error("kb.store.load").times(u32::MAX)),
    );
    openbi_faults::install(plan);
    let save_err = kb.save(&path).expect_err("injected save fault");
    assert!(
        save_err.to_string().contains("injected fault"),
        "{save_err}"
    );
    let load_err = openbi::kb::KnowledgeBase::load(&path).expect_err("injected load fault");
    assert!(
        load_err.to_string().contains("injected fault"),
        "{load_err}"
    );
    openbi_faults::uninstall();

    kb.save(&path).expect("save recovers after uninstall");
    let restored = openbi::kb::KnowledgeBase::load(&path).expect("load recovers");
    assert_eq!(restored.len(), kb.len());
    std::fs::remove_file(&path).ok();
}

/// Injected `kb.publish` faults degrade the snapshot store — batches
/// fall back to the pending queue, the served snapshot stays on its
/// last good generation — and a bounded flush retry loop converges to
/// the exact fault-free knowledge base. A snapshot pinned before the
/// run never changes, no matter how many publishes fail behind it.
#[test]
fn publish_faults_degrade_without_corrupting_served_snapshots() {
    use openbi::kb::{KnowledgeBase, SnapshotKnowledgeBase};

    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    for seed in chaos_seeds() {
        let baseline_kb = SharedKnowledgeBase::default();
        let baseline =
            run_phase1_report(&datasets(), &criteria, &config(seed, 1), &baseline_kb).unwrap();
        assert!(baseline.failures.is_empty(), "baseline must be fault-free");
        let expected = kb_fingerprint(&baseline_kb.snapshot());

        for workers in chaos_workers() {
            // The plan lives on the store, not the executor: grid cells
            // run clean, only generation publishes misbehave (each
            // generation's first attempt fails under the times=1 budget).
            let plan = Arc::new(FaultPlan::new(seed).with(FaultRule::error("kb.publish")));
            let store = SnapshotKnowledgeBase::new(KnowledgeBase::new()).with_fault_plan(plan);
            let pinned = store.pin();

            let report =
                run_phase1_report(&datasets(), &criteria, &config(seed, workers), &store).unwrap();
            assert!(
                report.failures.is_empty(),
                "publish faults must not fail grid cells: {:?}",
                report.failures
            );
            assert_eq!(
                (pinned.generation(), pinned.len()),
                (0, 0),
                "seed {seed}, {workers} workers: pre-run pin must be untouched"
            );

            // Operational drain loop: each flush either publishes the
            // backlog or surfaces the injected fault; the per-generation
            // retry budget guarantees convergence within two attempts
            // per generation.
            let mut flushes = 0;
            while store.pending_len() > 0 {
                if let Err(e) = store.flush() {
                    assert!(e.to_string().contains("injected fault"), "{e}");
                }
                flushes += 1;
                assert!(flushes < 64, "flush retry loop must converge");
            }
            assert!(store.generation() > 0, "drained store must have published");
            assert_eq!(
                kb_fingerprint(&store.pin()),
                expected,
                "seed {seed}, {workers} workers: degraded publishing corrupted the KB"
            );
        }
    }
}

/// The OLAP cube workload used by the shard-fault tests: the
/// municipal-budget fact table rolled up by district × category with
/// the full aggregate roster over spend.
fn budget_cube(seed: u64) -> Cube {
    let facts = openbi::datagen::municipal_budget(600, seed).table;
    Cube::new(
        facts,
        &["district", "category"],
        vec![
            Measure::Sum("spent_eur".into()),
            Measure::Mean("spent_eur".into()),
            Measure::Count("spent_eur".into()),
            Measure::Min("spent_eur".into()),
            Measure::Max("spent_eur".into()),
        ],
    )
    .expect("workload dims exist")
}

/// Shard builds that fail their first attempt and retry to success
/// must produce a cube byte-identical to the fault-free build — same
/// table fingerprint, same quality annotations — at every shard count
/// in the chaos matrix. This is the grid-executor determinism argument
/// replayed against the OLAP engine: a retried shard re-aggregates the
/// exact same contiguous row range, so the merge cannot tell it ever
/// failed.
#[test]
fn retried_shard_faults_leave_the_cube_byte_identical() {
    let dims = ["district", "category"];
    for seed in chaos_seeds() {
        let cube = budget_cube(seed);
        let baseline = cube
            .rollup_quality(&dims, &CubeOptions::with_shards(4))
            .unwrap();
        assert!(!baseline.is_degraded(), "baseline must be fault-free");
        assert!(baseline.table.n_rows() > 0);

        for shards in chaos_workers() {
            let plan =
                Arc::new(FaultPlan::new(seed).with(FaultRule::error(CUBE_BUILD_FAULT_POINT)));
            let options = CubeOptions {
                shards,
                max_retries: 2,
                fault_plan: Some(plan),
            };
            let got = cube.rollup_quality(&dims, &options).unwrap();
            assert!(
                got.failed_shards.is_empty(),
                "seed {seed}, {shards} shard(s): every shard must retry to success, got {:?}",
                got.failed_shards
            );
            assert_eq!(
                baseline.table.fingerprint(),
                got.table.fingerprint(),
                "seed {seed}, {shards} shard(s): faulted cube diverged from fault-free cube"
            );
            assert_eq!(
                baseline.quality, got.quality,
                "seed {seed}, {shards} shard(s): quality annotations diverged"
            );
        }
    }
}

/// When a shard's retries are exhausted the build must degrade, not
/// abort: `rollup_quality` still returns `Ok`, the failed shards are
/// named, the surviving totals are visibly partial (lower support than
/// the clean build), and the rendered report leads with the `DEGRADED`
/// banner so the partial numbers cannot be mistaken for real ones.
#[test]
fn exhausted_shard_retries_flag_a_partial_cube_instead_of_aborting() {
    let dims = ["district", "category"];
    let cube = budget_cube(7);
    let clean = cube
        .rollup_quality(&dims, &CubeOptions::with_shards(8))
        .unwrap();
    let clean_support: u64 = clean.quality.iter().map(|q| q.support).sum();

    // Every attempt on ~half the shards fails (deterministic key-hash
    // selection), with a retry budget too small to save them.
    let plan = Arc::new(
        FaultPlan::new(11).with(
            FaultRule::error(CUBE_BUILD_FAULT_POINT)
                .ratio(0.5)
                .times(u32::MAX),
        ),
    );
    let options = CubeOptions {
        shards: 8,
        max_retries: 2,
        fault_plan: Some(plan),
    };
    let degraded = cube
        .rollup_quality(&dims, &options)
        .expect("exhausted retries degrade, they do not abort");

    assert!(degraded.is_degraded());
    assert_eq!(degraded.total_shards, 8);
    assert!(
        !degraded.failed_shards.is_empty() && degraded.failed_shards.len() < 8,
        "the 0.5 ratio must fail some shards and spare others, got {:?}",
        degraded.failed_shards
    );
    let partial_support: u64 = degraded.quality.iter().map(|q| q.support).sum();
    assert!(
        partial_support < clean_support,
        "partial cube must cover fewer fact rows ({partial_support} vs {clean_support})"
    );

    let report = quality_table_report(
        "degraded budget rollup",
        &degraded,
        &QualityThresholds::default(),
        usize::MAX,
    )
    .unwrap();
    assert!(
        report.contains("!! DEGRADED"),
        "report must lead with the degradation banner:\n{report}"
    );
    assert!(
        report.contains(&format!(
            "{}/{} shards failed",
            degraded.failed_shards.len(),
            degraded.total_shards
        )),
        "banner must name the failed-shard count:\n{report}"
    );

    // The same build with enough retry budget recovers completely:
    // `times(u32::MAX)` never stops firing, so recovery must come from
    // a plan whose rules spend their budget, exactly like the retried
    // test above.
    let recovered_plan = Arc::new(
        FaultPlan::new(11).with(FaultRule::error(CUBE_BUILD_FAULT_POINT).ratio(0.5).times(1)),
    );
    let recovered = cube
        .rollup_quality(
            &dims,
            &CubeOptions {
                shards: 8,
                max_retries: 2,
                fault_plan: Some(recovered_plan),
            },
        )
        .unwrap();
    assert!(!recovered.is_degraded());
    assert_eq!(clean.table.fingerprint(), recovered.table.fingerprint());
}
