//! LOD parser robustness suite: Turtle and N-Triples round-trips must be
//! fixpoints, and malformed input must come back as `Err` — never a panic.
//!
//! Round-trip fixpoint means `parse(write(g))` reproduces the exact
//! triple set of `g`, and writing the re-parsed graph yields the exact
//! same text — so serialization is stable under repeated
//! parse/write cycles (a property the KB import/export path relies on).
//! `Graph` deliberately has no `PartialEq`; equality here is over the
//! sorted triple set, which is the semantic content of an RDF graph.
//!
//! The malformed-input corpus covers the failure shapes open-data feeds
//! actually produce: truncated documents, unterminated IRIs and strings,
//! undeclared prefixes, bad escapes, missing terminators, and plain
//! garbage. Each case must return a `LodError`; a panic anywhere fails
//! the whole suite, since these parsers sit on the untrusted-input
//! boundary of the pipeline.

use openbi_lod::{
    parse_ntriples, parse_turtle, write_ntriples, write_turtle, Graph, Iri, Literal, PrefixMap,
    Term, Triple,
};

/// The semantic content of a graph: its triples, in sorted order.
fn triples(g: &Graph) -> Vec<Triple> {
    let mut v: Vec<Triple> = g.iter().collect();
    v.sort();
    v
}

/// A graph exercising every term shape the model supports: IRIs, blank
/// nodes, and plain / language-tagged / typed / numeric / boolean
/// literals, including lexical forms that need every escape.
fn kitchen_sink() -> Graph {
    let mut g = Graph::new();
    let s = Term::iri("http://data.example.org/dataset/air-quality");
    let p = |n: &str| Term::iri(&format!("http://data.example.org/ns#{n}"));
    g.add(
        s.clone(),
        p("label"),
        Term::Literal(Literal::plain("PM10 readings")),
    );
    g.add(
        s.clone(),
        p("note"),
        Term::Literal(Literal::plain(
            "quote \" backslash \\ newline \n tab \t cr \r done",
        )),
    );
    g.add(
        s.clone(),
        p("title"),
        Term::Literal(Literal::lang("Luftqualität — München", "de")),
    );
    g.add(
        s.clone(),
        p("updated"),
        Term::Literal(Literal::typed(
            "2012-03-26",
            Iri::new("http://www.w3.org/2001/XMLSchema#date").unwrap(),
        )),
    );
    g.add(s.clone(), p("rows"), Term::Literal(Literal::integer(8_760)));
    g.add(s.clone(), p("mean"), Term::Literal(Literal::double(27.5)));
    g.add(s.clone(), p("open"), Term::Literal(Literal::boolean(true)));
    g.add(s.clone(), p("station"), Term::Blank("st1".into()));
    g.add(
        Term::Blank("st1".into()),
        p("label"),
        Term::Literal(Literal::plain("Landshuter Allee")),
    );
    g.add(
        s,
        p("license"),
        Term::iri("http://creativecommons.org/licenses/by/3.0/"),
    );
    g
}

#[test]
fn ntriples_round_trip_is_a_fixpoint_over_every_term_shape() {
    let g = kitchen_sink();
    let text = write_ntriples(&g);
    let back = parse_ntriples(&text).expect("own output parses");
    assert_eq!(
        triples(&g),
        triples(&back),
        "triple set survives the round trip"
    );
    assert_eq!(
        text,
        write_ntriples(&back),
        "second serialization is byte-identical (fixpoint)"
    );
}

#[test]
fn turtle_round_trip_preserves_the_triple_set() {
    let g = kitchen_sink();
    // Default prefixes (xsd: is used by the typed literals) and a
    // custom one covering the dataset namespace.
    let mut prefixes = PrefixMap::default();
    prefixes.add("ds", "http://data.example.org/ns#");
    for pm in [&prefixes, &PrefixMap::empty()] {
        let text = write_turtle(&g, pm);
        let back = parse_turtle(&text).expect("own output parses");
        assert_eq!(
            triples(&g),
            triples(&back),
            "triple set survives Turtle round trip"
        );
        // And the writer is stable: writing the re-parsed graph with the
        // same prefix map reproduces the exact document.
        assert_eq!(text, write_turtle(&back, pm), "Turtle fixpoint");
    }
}

#[test]
fn handwritten_documents_stabilize_after_one_cycle() {
    let turtle_doc = r#"
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:alice a ex:Person ;
    ex:name "Alice" ;
    ex:age 30 ;
    ex:height 1.65 ;
    ex:knows ex:bob, ex:carol .

ex:bob ex:name "Bob"@en ;
    ex:active true ;
    ex:score "7"^^xsd:integer .
_:obs ex:of ex:alice .
"#;
    let ntriples_doc = "\
# comment line, then a blank line

<http://e.org/a> <http://e.org/p> <http://e.org/b> .
<http://e.org/a>   <http://e.org/name>\t\"Al\\\"ice\\n\" .  # trailing comment
<http://e.org/a> <http://e.org/age> \"30\"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e.org/a> <http://e.org/greet> \"hola\"@es .
_:b0 <http://e.org/p> _:b1 .
";
    // Turtle: parse → write → parse must stabilize.
    let g1 = parse_turtle(turtle_doc).expect("valid document");
    let text1 = write_turtle(&g1, &PrefixMap::default());
    let g2 = parse_turtle(&text1).expect("round-tripped document");
    assert_eq!(triples(&g1), triples(&g2));
    assert_eq!(text1, write_turtle(&g2, &PrefixMap::default()));

    // N-Triples likewise; whitespace/comment layout normalizes away
    // but the triple set is untouched.
    let g1 = parse_ntriples(ntriples_doc).expect("valid document");
    let text1 = write_ntriples(&g1);
    let g2 = parse_ntriples(&text1).expect("round-tripped document");
    assert_eq!(triples(&g1), triples(&g2));
    assert_eq!(text1, write_ntriples(&g2));
}

#[test]
fn cross_format_round_trip_agrees() {
    // Turtle → graph → N-Triples → graph: both formats describe the
    // same triple set.
    let g = kitchen_sink();
    let via_turtle = parse_turtle(&write_turtle(&g, &PrefixMap::default())).unwrap();
    let via_nt = parse_ntriples(&write_ntriples(&via_turtle)).unwrap();
    assert_eq!(triples(&g), triples(&via_nt));
}

#[test]
fn malformed_turtle_errs_never_panics() {
    let corpus: &[&str] = &[
        "<http://unterminated",                          // unterminated IRI
        "<http://a> <http://b> \"unterminated",          // unterminated string
        "zzz:a zzz:b zzz:c .",                           // undeclared prefix
        "<http://a> <http://b> <http://c>",              // missing terminator
        "<http://a> <http://b> \"x\\q\" .",              // unknown escape
        "<http://a> <http://b> \"x\\u00G1\" .",          // bad \u escape
        "@prefix ex: <http://ex.org/>",                  // @prefix without dot
        "@prefix <http://ex.org/> .",                    // @prefix without name
        "@pre",                                          // truncated directive
        "<http://a> \"p\" <http://b> .",                 // literal predicate
        "<http://a> <http://b> ;",                       // dangling semicolon
        ". . .",                                         // only dots
        "<http://a> <http://b> \"x\"^^ .",               // ^^ without datatype
        "<http://a> <http://b> \"x\"^^\"y\" .",          // ^^ with a literal
        "<http://has space> <http://b> <http://c> .",    // whitespace in IRI
        "<http://a> <http://b> <http://c> <http://d> .", // four terms
        "🗑️ garbage that is not turtle at all",          // garbage bytes
    ];
    for (i, doc) in corpus.iter().enumerate() {
        let got = parse_turtle(doc);
        assert!(got.is_err(), "turtle corpus[{i}] {doc:?} parsed to {got:?}");
    }
}

#[test]
fn malformed_ntriples_errs_never_panics() {
    let corpus: &[&str] = &[
        "<http://a> <http://b> <http://c>", // missing dot
        "<http://unterminated <http://b> <http://c> .",
        "<http://a> <http://b> \"unterminated .",
        "<http://a> <http://b> \"x\\q\" .",     // unknown escape
        "<http://a> <http://b> \"x\\uZZZZ\" .", // bad \u escape
        "_x <http://b> <http://c> .",           // blank without colon
        "<http://a> \"p\" <http://b> .",        // literal predicate
        "_:b \"p\" _:c .",                      // ditto, blank terms
        "<http://a> <http://b> .",              // missing object
        "<http://a> .",                         // missing predicate+object
        "ex:a ex:b ex:c .",                     // prefixes are not N-Triples
        "<http://a> <http://b> 42 .",           // bare number is not N-Triples
        "just some words .",
    ];
    for (i, doc) in corpus.iter().enumerate() {
        let got = parse_ntriples(doc);
        assert!(
            got.is_err(),
            "ntriples corpus[{i}] {doc:?} parsed to {got:?}"
        );
    }
    // Errors carry the 1-based line of the offending triple.
    let err = parse_ntriples("<http://a> <http://b> <http://c> .\nbroken line\n").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('2'), "error should cite line 2, got: {msg}");
}

/// Truncation fuzz: chop a valid document at every char boundary and
/// feed the prefix to the parser. Every prefix must produce a clean
/// `Ok` or `Err` — this is the "never panics" guarantee under the most
/// common real-world corruption (a cut-off download).
#[test]
fn every_truncation_of_a_valid_document_is_handled() {
    let turtle_doc = write_turtle(&kitchen_sink(), &PrefixMap::default());
    let nt_doc = write_ntriples(&kitchen_sink());
    let mut turtle_errs = 0usize;
    for (i, _) in turtle_doc.char_indices() {
        if parse_turtle(&turtle_doc[..i]).is_err() {
            turtle_errs += 1;
        }
    }
    let mut nt_errs = 0usize;
    for (i, _) in nt_doc.char_indices() {
        if parse_ntriples(&nt_doc[..i]).is_err() {
            nt_errs += 1;
        }
    }
    // Sanity: truncation genuinely produces malformed docs (the loop
    // isn't vacuously passing on all-Ok prefixes).
    assert!(
        turtle_errs > 10,
        "expected many malformed Turtle prefixes, got {turtle_errs}"
    );
    assert!(
        nt_errs > 10,
        "expected many malformed N-Triples prefixes, got {nt_errs}"
    );
}
