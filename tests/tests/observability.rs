//! End-to-end observability: an installed `openbi-obs` registry must
//! collect consistent metrics from all three instrumented layers (grid
//! executor, pipeline stages, advisor serving path) WITHOUT changing
//! any produced result — the identical-KB-across-worker-counts
//! guarantee must hold while instrumented.
//!
//! Everything lives in ONE test function on purpose: the process-global
//! registry slot is shared, and integration test functions in a binary
//! run on parallel threads. One function keeps the exact-value
//! assertions race-free (this file is its own process, so no other test
//! binary can interfere either).

use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{Advisor, SharedKnowledgeBase};
use openbi::obs;
use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi::quality::QualityProfile;
use openbi_datagen::{make_blobs, BlobsConfig};
use std::sync::Arc;

fn grid_datasets() -> Vec<ExperimentDataset> {
    [21u64, 22]
        .iter()
        .map(|&seed| {
            ExperimentDataset::new(
                format!("obs-blobs-{seed}"),
                make_blobs(&BlobsConfig {
                    n_rows: 120,
                    n_features: 3,
                    n_classes: 2,
                    class_separation: 3.0,
                    seed,
                }),
                "class",
            )
        })
        .collect()
}

fn grid_config(workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![
            openbi::mining::AlgorithmSpec::ZeroR,
            openbi::mining::AlgorithmSpec::NaiveBayes,
        ],
        severities: vec![0.0, 0.6],
        folds: 3,
        seed: 7,
        parallel: workers > 1,
        workers,
        ..ExperimentConfig::default()
    }
}

/// Stable identity of every record a grid run produced.
fn record_keys(kb: &SharedKnowledgeBase) -> Vec<String> {
    let mut keys: Vec<String> = kb
        .snapshot()
        .records()
        .iter()
        .map(|r| {
            format!(
                "{}|{:?}|{}|{}|{:.12}|{:.12}",
                r.dataset, r.degradations, r.algorithm, r.seed, r.metrics.accuracy, r.metrics.kappa
            )
        })
        .collect();
    keys.sort();
    keys
}

#[test]
fn instrumentation_observes_all_layers_without_changing_results() {
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));

    // --- Grid executor: determinism across worker counts, instrumented.
    let datasets = grid_datasets();
    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    let mut keys_by_workers = Vec::new();
    let mut total_cells = 0usize;
    let mut total_records = 0usize;
    for workers in [1usize, 4] {
        let kb = SharedKnowledgeBase::default();
        let report = run_phase1_report(&datasets, &criteria, &grid_config(workers), &kb)
            .expect("instrumented grid run");
        assert!(report.failures.is_empty());
        assert_eq!(report.worker_stats.len(), workers);
        assert_eq!(
            report.worker_stats.iter().map(|s| s.cells).sum::<usize>(),
            report.cells,
            "per-worker cells must sum to the grid total"
        );
        assert!(report.wall_seconds > 0.0);
        total_cells += report.cells;
        total_records += report.records;
        keys_by_workers.push(record_keys(&kb));
    }
    assert_eq!(
        keys_by_workers[0], keys_by_workers[1],
        "identical KB across worker counts must hold with instrumentation on"
    );

    // --- Pipeline stages.
    let csv = "x,y,label\n1,2.0,a\n2,3.0,b\n3,4.0,a\n4,5.0,b\n5,6.0,a\n6,7.0,b\n\
               7,8.0,a\n8,9.0,b\n9,10.0,a\n10,11.0,b\n";
    let outcome = run_pipeline(
        DataSource::CsvText {
            name: "obs-toy".into(),
            content: csv.into(),
        },
        &PipelineConfig {
            target: Some("label".into()),
            folds: 2,
            ..Default::default()
        },
        None,
    )
    .expect("instrumented pipeline run");
    assert!(outcome.evaluation.is_some());

    // --- Advisor serving path (single queries + a batch).
    let kb = SharedKnowledgeBase::default();
    run_phase1_report(&datasets, &criteria, &grid_config(1), &kb).expect("kb build");
    total_cells += 8;
    total_records += 16;
    let kb = kb.snapshot();
    let advisor = Advisor::default();
    let profiles: Vec<QualityProfile> = vec![QualityProfile::default(); 3];
    let single = advisor.advise(&kb, &profiles[0]).expect("advise");
    let batched = advisor.advise_many(&kb, &profiles).expect("advise_many");
    assert_eq!(batched.len(), 3);
    assert_eq!(&single, &batched[0], "batch must equal one-at-a-time");

    obs::uninstall();
    let snap = registry.snapshot();

    // Grid metrics: counters equal the per-report totals; the per-cell
    // histogram saw every cell.
    assert_eq!(snap.counters["grid.cells_total"], total_cells as u64);
    assert_eq!(snap.counters["grid.records_total"], total_records as u64);
    // No cell failed, so the failure counter was never created.
    assert_eq!(
        snap.counters
            .get("grid.cell_failures_total")
            .copied()
            .unwrap_or(0),
        0
    );
    assert_eq!(
        snap.histograms["grid.cell.seconds"].count,
        total_cells as u64
    );
    assert_eq!(
        snap.histograms["grid.injector_depth"].count,
        total_cells as u64
    );
    assert!(snap.histograms["grid.flush.batch_records"].count >= 3);
    assert_eq!(snap.histograms["grid.phase1.seconds"].count, 3);
    assert!(snap.counters.contains_key("grid.steals_total"));
    assert!(snap.histograms.contains_key("grid.queue_wait.seconds"));

    // Pipeline metrics: one run, every stage histogram populated once.
    assert_eq!(snap.counters["pipeline.runs_total"], 1);
    for stage in [
        "pipeline.stage.ingest.seconds",
        "pipeline.stage.quality.seconds",
        "pipeline.stage.advice.seconds",
        "pipeline.stage.preprocess.seconds",
        "pipeline.stage.mine.seconds",
        "pipeline.stage.publish.seconds",
    ] {
        assert_eq!(snap.histograms[stage].count, 1, "{stage}");
    }

    // Advisor metrics: 1 single + 3 batched queries; index lookups hit
    // both algorithms for every query; one batch of size 3.
    assert_eq!(snap.counters["advisor.queries_total"], 4);
    assert_eq!(snap.histograms["advisor.advise.seconds"].count, 4);
    assert_eq!(snap.counters["advisor.index.hits_total"], 8);
    assert_eq!(snap.counters["advisor.index.empty_total"], 0);
    assert_eq!(snap.histograms["advisor.candidates"].count, 8);
    assert_eq!(snap.counters["advisor.batch.calls_total"], 1);
    assert_eq!(snap.histograms["advisor.batch.size"].count, 1);
    assert_eq!(snap.histograms["advisor.batch.size"].max, 3.0);
    assert_eq!(snap.histograms["advisor.batch.seconds"].count, 1);

    // The exported JSON is valid and structurally complete.
    let json: serde_json::Value =
        serde_json::from_str(&snap.to_json()).expect("snapshot JSON parses");
    assert_eq!(json["counters"]["grid.cells_total"], total_cells as u64);
    assert_eq!(
        json["histograms"]["advisor.advise.seconds"]["count"], 4,
        "histogram counts survive export"
    );
    let buckets = json["histograms"]["grid.cell.seconds"]["buckets"]
        .as_array()
        .expect("bucket array");
    assert_eq!(buckets.last().unwrap()["le"], "+Inf");

    // After uninstall, recording is a no-op again.
    obs::counter_add("grid.cells_total", 999);
    assert_eq!(
        registry.snapshot().counters["grid.cells_total"],
        total_cells as u64
    );
}
