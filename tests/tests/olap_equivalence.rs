//! Sharded-cube equivalence suite (DESIGN.md §14).
//!
//! The pre-rewrite single-threaded cube is frozen in-tree as
//! `openbi::olap::reference` — the same `group_by`-per-rollup code that
//! existed before the sharded engine. Every test here builds the
//! identical rollup through both implementations **in the same
//! process** and demands byte-identical output via
//! `Table::fingerprint()` (FNV-128 over schema + canonical cell bytes):
//! the same group order, the same key strings, and the same aggregate
//! f64 bit patterns at every shard count. Nothing here is
//! tolerance-based — a one-ULP drift in any accumulator, or a single
//! reordered group, fails the suite.
//!
//! Why this is provable rather than hopeful: shards are contiguous row
//! ranges merged in shard order with first-seen-wins group insertion
//! (so global first-seen order is preserved), sums and means go through
//! the exact fixed-point accumulator (`ExactSum` — addition is
//! order-independent by construction), and min/max fold with an
//! explicit total order, making every per-cell result independent of
//! the shard partition. The tests sweep shard counts that do and do not
//! divide the row count, seeds, every rollup depth, and the edge
//! regimes (nulls, NaNs, single-row groups, the empty fact table) to
//! hold the implementation to that argument.

use openbi_datagen::scenario::all_scenarios;
use openbi_olap::{reference, Cube, CubeOptions, Measure};
use openbi_table::{Column, Table};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const SEEDS: [u64; 3] = [7, 21, 1042];

/// All five aggregates over `column`.
fn all_measures(column: &str) -> Vec<Measure> {
    vec![
        Measure::Sum(column.into()),
        Measure::Mean(column.into()),
        Measure::Count(column.into()),
        Measure::Min(column.into()),
        Measure::Max(column.into()),
    ]
}

/// Assert the sharded engine matches the frozen reference bitwise for
/// one cube spec, at every rollup depth and shard count.
fn assert_equivalent(facts: Table, dims: &[&str], measures: Vec<Measure>, context: &str) {
    let live = Cube::new(facts.clone(), dims, measures.clone()).expect("live cube");
    let frozen = reference::Cube::new(facts, dims, measures).expect("reference cube");
    for depth in 1..=dims.len() {
        let sub = &dims[..depth];
        let want = frozen.rollup(sub).expect("reference rollup");
        for shards in SHARD_COUNTS {
            let got = live
                .rollup_quality(sub, &CubeOptions::with_shards(shards))
                .expect("sharded rollup");
            assert_eq!(
                want.fingerprint(),
                got.table.fingerprint(),
                "{context}: dims {sub:?} diverged at {shards} shard(s)"
            );
            assert_eq!(
                got.quality.len(),
                got.table.n_rows(),
                "{context}: one quality annotation per output row"
            );
        }
    }
    let want = frozen.total().expect("reference total");
    let got = live.total().expect("sharded total");
    assert_eq!(
        want.fingerprint(),
        got.fingerprint(),
        "{context}: grand total diverged"
    );
}

/// Every generator scenario (municipal budget, air quality, …) with its
/// id columns as dimensions and the full aggregate roster over every
/// numeric column — nulls and skew included — across seeds and shard
/// counts that do not divide the row count.
#[test]
fn scenario_sweep_is_bitwise_identical_at_every_shard_count() {
    let mut checked = 0;
    for seed in SEEDS {
        for sc in all_scenarios(500, seed) {
            let names = sc.table.column_names();
            let dims: Vec<&str> = names
                .iter()
                .filter(|n| sc.id_columns.iter().any(|c| c == **n))
                .cloned()
                .collect();
            if dims.is_empty() {
                continue;
            }
            let measures: Vec<Measure> = names
                .iter()
                .filter(|n| !dims.contains(n) && ***n != *sc.target)
                .flat_map(|n| all_measures(n))
                .collect();
            assert_equivalent(
                sc.table.clone(),
                &dims,
                measures,
                &format!("{} seed {seed}", sc.name),
            );
            checked += 1;
        }
    }
    assert!(checked >= 6, "scenario roster shrank to {checked}");
}

/// NaN measures, null measures, and a ±0.0 tie in the same cube: NaN
/// must poison sum/mean and pass through min/max identically on both
/// sides, nulls must be skipped but still counted into the quality
/// ratio, and -0.0 vs +0.0 must keep the reference's bit pattern.
#[test]
fn nan_null_and_signed_zero_cells_match_reference() {
    let facts = Table::new(vec![
        Column::from_str_values("g", ["a", "a", "b", "b", "c", "c", "d"]),
        Column::from_opt_f64(
            "x",
            [
                Some(f64::NAN),
                Some(1.5),
                None,
                Some(-0.0),
                Some(0.0),
                Some(-0.0),
                None,
            ],
        ),
    ])
    .unwrap();
    assert_equivalent(facts, &["g"], all_measures("x"), "nan/null/zero");
}

/// An all-NaN group exercises the min/max fold identities (the
/// reference folds from ±INFINITY; the engine must reproduce those
/// exact bits rather than "fix" them).
#[test]
fn all_nan_group_reproduces_reference_fold_identities() {
    let facts = Table::new(vec![
        Column::from_str_values("g", ["a", "a", "b"]),
        Column::from_f64("x", [f64::NAN, f64::NAN, 2.0]),
    ])
    .unwrap();
    assert_equivalent(facts, &["g"], all_measures("x"), "all-NaN group");
}

/// Single-row groups: a key column with all-distinct values means more
/// groups than some shard counts, shard boundaries never split a group,
/// and first-seen order is just row order.
#[test]
fn single_row_groups_survive_any_partition() {
    let n = 23; // prime, so 2/4/7 shards all cut unevenly
    let facts = Table::new(vec![
        Column::from_str_values("id", (0..n).map(|i| format!("row{i}"))),
        Column::from_f64("x", (0..n).map(|i| i as f64 * 1.25 - 7.0)),
    ])
    .unwrap();
    assert_equivalent(facts, &["id"], all_measures("x"), "single-row groups");
}

/// The empty fact table: zero rows must yield a zero-row rollup (and a
/// zero-row grand total) from both implementations, not a panic, at
/// every shard count.
#[test]
fn empty_fact_table_yields_empty_cube() {
    let facts = Table::new(vec![
        Column::from_str_values("g", Vec::<String>::new()),
        Column::from_f64("x", Vec::<f64>::new()),
    ])
    .unwrap();
    let live = Cube::new(facts.clone(), &["g"], all_measures("x")).unwrap();
    for shards in SHARD_COUNTS {
        let got = live
            .rollup_quality(&["g"], &CubeOptions::with_shards(shards))
            .unwrap();
        assert_eq!(got.table.n_rows(), 0);
        assert!(got.quality.is_empty());
        assert!(!got.is_degraded());
    }
    assert_equivalent(facts, &["g"], all_measures("x"), "empty fact table");
}

/// Mixed dimension dtypes (int, bool, float keys — not just strings):
/// dictionary encoding renders keys exactly as `group_by` does, so a
/// float dimension value like `2020.5` or a null key must produce the
/// same key string and group order.
#[test]
fn non_string_dimension_keys_render_identically() {
    let facts = Table::new(vec![
        Column::from_opt_i64("year", [Some(2020), Some(2021), None, Some(2020), None]),
        Column::from_bool("flagged", [true, false, true, true, false]),
        Column::from_f64("band", [1.5, 2.5, 1.5, f64::NAN, f64::NAN]),
        Column::from_f64("x", [1.0, 2.0, 3.0, 4.0, 5.0]),
    ])
    .unwrap();
    assert_equivalent(
        facts,
        &["year", "flagged", "band"],
        all_measures("x"),
        "typed dimension keys",
    );
}

/// Slice and dice go through the same sharded rollup afterwards; the
/// filtered sub-cubes must stay equivalent too.
#[test]
fn slice_and_dice_subcubes_stay_equivalent() {
    for seed in SEEDS {
        let sc = &all_scenarios(400, seed)[0];
        let names = sc.table.column_names();
        let dims: Vec<&str> = names
            .iter()
            .filter(|n| sc.id_columns.iter().any(|c| c == **n))
            .cloned()
            .collect();
        let measure_col = names
            .iter()
            .find(|n| !dims.contains(n) && ***n != *sc.target)
            .expect("a numeric column");
        let live = Cube::new(sc.table.clone(), &dims, all_measures(measure_col)).unwrap();
        let frozen =
            reference::Cube::new(sc.table.clone(), &dims, all_measures(measure_col)).unwrap();
        // Slice on the first value of the first dimension.
        let dim = dims[0];
        let value = sc.table.column(dim).unwrap().get(0).unwrap().to_string();
        let live_slice = live.slice(dim, &value).unwrap();
        let frozen_slice = frozen.slice(dim, &value).unwrap();
        assert_eq!(
            live_slice.facts().fingerprint(),
            frozen_slice.facts().fingerprint(),
            "slice selects the same rows"
        );
        for shards in SHARD_COUNTS {
            assert_eq!(
                frozen_slice.rollup(&dims).unwrap().fingerprint(),
                live_slice
                    .rollup_quality(&dims, &CubeOptions::with_shards(shards))
                    .unwrap()
                    .table
                    .fingerprint(),
                "sliced rollup diverged at {shards} shard(s) (seed {seed})"
            );
        }
    }
}
