//! Property-based tests (proptest) on cross-crate invariants: CSV and
//! N-Triples round trips, injector contracts, profile bounds,
//! evaluation-metric ranges, grid accounting under arbitrary fault
//! plans, and sharded-cube invariants (rollup additivity, slice/dice
//! consistency, quality-annotation bounds, shard-count independence).

use openbi::quality::{
    measure_profile, Degradation, DuplicateInjector, Injector, LabelNoiseInjector, MeasureOptions,
    MissingInjector,
};
use openbi::table::{read_csv_str, write_csv_str, Column, CsvOptions, Table, Value};
use openbi_lod::{parse_ntriples, write_ntriples, Graph, Iri, Literal, Term, Triple};
use openbi_olap::{Cube, CubeOptions, Measure};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a well-formed table with a 2-class label column.
fn arb_table() -> impl Strategy<Value = Table> {
    (2usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1e6f64..1e6, n..=n),
            proptest::collection::vec(proptest::option::of(0i64..100), n..=n),
            proptest::collection::vec(0usize..2, n..=n),
        )
            .prop_map(|(floats, ints, labels)| {
                Table::new(vec![
                    Column::from_f64("x", floats),
                    Column::from_opt_i64("k", ints),
                    Column::from_str_values(
                        "class",
                        labels
                            .into_iter()
                            .map(|l| if l == 0 { "a" } else { "b" })
                            .collect::<Vec<&str>>(),
                    ),
                ])
                .expect("consistent columns")
            })
    })
}

/// Strategy: CSV-safe cell text (anything; the writer must escape it).
fn arb_cell() -> impl Strategy<Value = String> {
    "[ -~]{0,12}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trip_preserves_string_tables(
        rows in proptest::collection::vec((arb_cell(), arb_cell()), 1..20)
    ) {
        // Build a string table; disable inference so values stay verbatim.
        let a: Vec<String> = rows.iter().map(|(a, _)| a.clone()).collect();
        let b: Vec<String> = rows.iter().map(|(_, b)| b.clone()).collect();
        let t = Table::new(vec![
            Column::from_str_values("a", a.clone()),
            Column::from_str_values("b", b.clone()),
        ]).unwrap();
        let text = write_csv_str(&t, ',');
        let opts = CsvOptions { infer_types: false, ..Default::default() };
        let back = read_csv_str(&text, &opts).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for i in 0..t.n_rows() {
            let orig = t.get("a", i).unwrap().to_string();
            let got = back.get("a", i).unwrap();
            // Empty strings become nulls on read — the only lossy case.
            if orig.is_empty() {
                prop_assert!(got.is_null() || got == Value::Str(String::new()));
            } else {
                prop_assert_eq!(got, Value::Str(orig));
            }
        }
    }

    #[test]
    fn missing_injector_respects_contract(ratio in 0.0f64..1.0, seed in 0u64..1000, table in arb_table()) {
        let inj = MissingInjector::mcar(ratio).exclude(["class"]);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = inj.apply(&table, &mut rng).unwrap();
        // Shape preserved.
        prop_assert_eq!(out.n_rows(), table.n_rows());
        prop_assert_eq!(out.n_cols(), table.n_cols());
        // Class column untouched.
        prop_assert_eq!(out.column("class").unwrap(), table.column("class").unwrap());
        // Null count only grows, and stays within the eligible cells.
        prop_assert!(out.total_null_count() >= table.total_null_count());
        prop_assert!(out.total_null_count() <= 2 * table.n_rows() + table.total_null_count());
        // Determinism.
        let mut rng2 = StdRng::seed_from_u64(seed);
        prop_assert_eq!(out, inj.apply(&table, &mut rng2).unwrap());
    }

    #[test]
    fn label_noise_flips_at_most_requested(ratio in 0.0f64..1.0, seed in 0u64..1000, table in arb_table()) {
        // Need both classes present for the injector.
        let distinct = table.column("class").unwrap().distinct().len();
        prop_assume!(distinct >= 2);
        let inj = LabelNoiseInjector::new("class", ratio);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = inj.apply(&table, &mut rng).unwrap();
        let flips = (0..table.n_rows())
            .filter(|&i| out.get("class", i).unwrap() != table.get("class", i).unwrap())
            .count();
        let expected = (ratio * table.n_rows() as f64).round() as usize;
        prop_assert!(flips <= expected);
        // Non-label columns untouched.
        prop_assert_eq!(out.column("x").unwrap(), table.column("x").unwrap());
    }

    #[test]
    fn duplicate_injector_only_appends(ratio in 0.0f64..0.6, seed in 0u64..1000, table in arb_table()) {
        let inj = DuplicateInjector::exact(ratio);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = inj.apply(&table, &mut rng).unwrap();
        prop_assert!(out.n_rows() >= table.n_rows());
        // The original rows are a prefix of the output.
        for i in 0..table.n_rows() {
            prop_assert_eq!(out.row(i).unwrap(), table.row(i).unwrap());
        }
        // Every appended row equals some original row.
        for i in table.n_rows()..out.n_rows() {
            let key = out.row_key(i).unwrap();
            let found = (0..table.n_rows()).any(|j| table.row_key(j).unwrap() == key);
            prop_assert!(found);
        }
    }

    #[test]
    fn quality_profile_stays_in_bounds(table in arb_table(), seed in 0u64..50) {
        // Degrade arbitrarily, then profile: all ratio criteria ∈ [0,1].
        let d = Degradation::new()
            .then(MissingInjector::mcar(0.3).exclude(["class"]))
            .then(DuplicateInjector::exact(0.2));
        let degraded = d.apply(&table, seed).unwrap();
        let profile = measure_profile(&degraded, &MeasureOptions::with_target("class"));
        for (name, v) in profile.criteria() {
            prop_assert!((0.0..=1.0).contains(&v), "{} = {}", name, v);
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn ntriples_round_trip_arbitrary_literals(
        strings in proptest::collection::vec("[ -~]{0,20}", 1..15)
    ) {
        let mut g = Graph::new();
        let p = Term::Iri(Iri::new("http://e.org/v").unwrap());
        for (i, s) in strings.iter().enumerate() {
            g.insert(Triple::new(
                Term::iri(&format!("http://e.org/s{i}")),
                p.clone(),
                Term::Literal(Literal::plain(s.clone())),
            ));
        }
        let text = write_ntriples(&g);
        let back = parse_ntriples(&text).unwrap();
        prop_assert_eq!(back.len(), g.len());
        for t in g.iter() {
            prop_assert!(back.contains(&t));
        }
    }

    #[test]
    fn graph_pattern_results_are_consistent(
        edges in proptest::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..30)
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &edges {
            g.insert(Triple::new(
                Term::iri(&format!("http://e.org/n{s}")),
                Term::iri(&format!("http://e.org/p{p}")),
                Term::iri(&format!("http://e.org/n{o}")),
            ));
        }
        // Sum of per-predicate matches equals the total triple count.
        let total: usize = (0..3)
            .map(|p| {
                let pred = Term::iri(&format!("http://e.org/p{p}"));
                g.match_pattern(None, Some(&pred), None).len()
            })
            .sum();
        prop_assert_eq!(total, g.len());
        // Every fully-bound lookup agrees with contains().
        for t in g.iter() {
            let found = g.match_pattern(Some(&t.subject), Some(&t.predicate), Some(&t.object));
            prop_assert_eq!(found.len(), 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn group_by_sums_partition_the_total(
        keys in proptest::collection::vec(0u8..4, 1..40),
        values in proptest::collection::vec(-1e3f64..1e3, 1..40)
    ) {
        let n = keys.len().min(values.len());
        let t = Table::new(vec![
            Column::from_str_values(
                "k",
                keys[..n].iter().map(|k| format!("g{k}")).collect::<Vec<String>>(),
            ),
            Column::from_f64("v", values[..n].to_vec()),
        ]).unwrap();
        let g = openbi::table::group_by(
            &t,
            &["k"],
            &[openbi::table::Aggregate::Sum("v".into()),
              openbi::table::Aggregate::Count("v".into())],
        ).unwrap();
        // Group sums add up to the overall sum; counts add up to n.
        let total: f64 = values[..n].iter().sum();
        let group_total: f64 = (0..g.n_rows())
            .map(|i| g.get("sum(v)", i).unwrap().as_f64().unwrap())
            .sum();
        prop_assert!((group_total - total).abs() < 1e-6);
        let count_total: i64 = (0..g.n_rows())
            .map(|i| g.get("count(v)", i).unwrap().as_i64().unwrap())
            .sum();
        prop_assert_eq!(count_total as usize, n);
    }

    #[test]
    fn sort_is_a_permutation_and_ordered(
        values in proptest::collection::vec(-1e6f64..1e6, 1..50)
    ) {
        let t = Table::new(vec![Column::from_f64("x", values.clone())]).unwrap();
        let sorted = t.sort_by("x", false).unwrap();
        prop_assert_eq!(sorted.n_rows(), t.n_rows());
        let out: Vec<f64> = sorted
            .column("x").unwrap().to_f64_vec().into_iter().flatten().collect();
        for w in out.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut expected = values.clone();
        expected.sort_by(f64::total_cmp);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn min_max_scale_bounds_and_order_preservation(
        values in proptest::collection::vec(-1e6f64..1e6, 2..50)
    ) {
        let t = Table::new(vec![Column::from_f64("x", values.clone())]).unwrap();
        let scaled = openbi::mining::preprocess::min_max_scale(&t, &["x"]).unwrap();
        let out: Vec<f64> = scaled
            .column("x").unwrap().to_f64_vec().into_iter().flatten().collect();
        for v in &out {
            prop_assert!((0.0..=1.0).contains(v), "scaled value {v}");
        }
        // Order of any two entries is preserved.
        for i in 1..values.len() {
            if values[i - 1] < values[i] {
                prop_assert!(out[i - 1] <= out[i]);
            }
        }
    }

    #[test]
    fn grid_accounting_holds_under_arbitrary_fault_plans(
        plan_seed in 0u64..1_000,
        ratio in 0.0f64..=1.0,
        times in 0u32..3,
        delay in proptest::option::of(0u64..2),
        max_retries in 0u32..3,
        workers in 1usize..3,
    ) {
        use openbi::experiment::{
            run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset,
        };
        use openbi_datagen::{make_blobs, BlobsConfig};
        use openbi_faults::{FaultKind, FaultPlan, FaultRule};

        // An arbitrary seeded plan against a tiny grid: whatever the
        // schedule does, the executor's books must balance.
        let kind = match delay {
            Some(ms) => FaultKind::Delay(ms),
            None => FaultKind::Error,
        };
        let plan = FaultPlan::new(plan_seed)
            .with(FaultRule::new("grid.cell.run", kind).times(times).ratio(ratio));
        let datasets = vec![ExperimentDataset::new(
            "blobs",
            make_blobs(&BlobsConfig {
                n_rows: 40,
                n_features: 3,
                n_classes: 2,
                class_separation: 3.0,
                seed: 1,
            }),
            "class",
        )];
        let cfg = ExperimentConfig {
            algorithms: vec![openbi::mining::AlgorithmSpec::ZeroR],
            severities: vec![0.0, 1.0],
            folds: 2,
            seed: plan_seed,
            parallel: true,
            workers,
            max_retries,
            retry_backoff: std::time::Duration::ZERO,
            fault_plan: Some(std::sync::Arc::new(plan)),
            ..ExperimentConfig::default()
        };
        let kb = openbi::kb::SharedKnowledgeBase::default();
        let report = run_phase1_report(&datasets, &[Criterion::Completeness], &cfg, &kb).unwrap();
        prop_assert_eq!(
            report.cells_attempted(),
            report.cells_succeeded + report.failures.len(),
            "attempted = succeeded + failed must hold for any plan"
        );
        for f in &report.failures {
            prop_assert!(
                (1..=max_retries + 1).contains(&f.attempts),
                "attempts {} outside 1..={}",
                f.attempts,
                max_retries + 1
            );
        }
        if delay.is_some() {
            // Delay faults slow cells down but never change results.
            prop_assert!(report.failures.is_empty());
            prop_assert_eq!(report.cells_succeeded, report.cells_attempted());
        }
    }

    #[test]
    fn vstack_then_split_round_trips(
        a in proptest::collection::vec(-1e3f64..1e3, 1..20),
        b in proptest::collection::vec(-1e3f64..1e3, 1..20)
    ) {
        let ta = Table::new(vec![Column::from_f64("x", a.clone())]).unwrap();
        let tb = Table::new(vec![Column::from_f64("x", b.clone())]).unwrap();
        let stacked = ta.vstack(&tb).unwrap();
        prop_assert_eq!(stacked.n_rows(), a.len() + b.len());
        let (top, bottom) = stacked.split_at(a.len()).unwrap();
        prop_assert_eq!(top, ta);
        prop_assert_eq!(bottom, tb);
    }
}

/// Strategy: a fact table for cube invariants — two low-cardinality
/// dimensions and one nullable measure column whose values live on the
/// dyadic grid `i/8` with small magnitude, so every partial sum is
/// exactly representable and rollup additivity is a **bitwise**
/// property, not a tolerance-based one.
fn arb_cube_facts() -> impl Strategy<Value = Table> {
    (1usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u8..3, n..=n),
            proptest::collection::vec(0u8..4, n..=n),
            proptest::collection::vec(proptest::option::of(-8000i32..8000), n..=n),
        )
            .prop_map(|(d1, d2, xs)| {
                Table::new(vec![
                    Column::from_str_values(
                        "d1",
                        d1.iter().map(|k| format!("a{k}")).collect::<Vec<String>>(),
                    ),
                    Column::from_str_values(
                        "d2",
                        d2.iter().map(|k| format!("b{k}")).collect::<Vec<String>>(),
                    ),
                    Column::from_opt_f64(
                        "x",
                        xs.into_iter()
                            .map(|o| o.map(|i| f64::from(i) / 8.0))
                            .collect::<Vec<Option<f64>>>(),
                    ),
                ])
                .expect("consistent columns")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cube_rollup_children_fold_exactly_to_parent(
        facts in arb_cube_facts(),
        shards in 1usize..8
    ) {
        // Folding the (d1, d2) cells per d1 group must land on the
        // (d1)-rollup cells exactly: same count, same sum bits (the
        // dyadic-grid measure keeps every partial sum representable).
        let cube = Cube::new(
            facts,
            &["d1", "d2"],
            vec![Measure::Sum("x".into()), Measure::Count("x".into())],
        ).unwrap();
        let opts = CubeOptions::with_shards(shards);
        let child = cube.rollup_quality(&["d1", "d2"], &opts).unwrap().table;
        let parent = cube.rollup_quality(&["d1"], &opts).unwrap().table;
        let mut sums: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        let mut counts: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
        for r in 0..child.n_rows() {
            let k = child.get("d1", r).unwrap().to_string();
            if let Some(v) = child.get("sum(x)", r).unwrap().as_f64() {
                *sums.entry(k.clone()).or_insert(0.0) += v;
            }
            *counts.entry(k).or_insert(0) += child.get("count(x)", r).unwrap().as_i64().unwrap();
        }
        for r in 0..parent.n_rows() {
            let k = parent.get("d1", r).unwrap().to_string();
            let count = parent.get("count(x)", r).unwrap().as_i64().unwrap();
            prop_assert_eq!(count, counts.get(&k).copied().unwrap_or(0), "count for {}", &k);
            match parent.get("sum(x)", r).unwrap().as_f64() {
                Some(sum) => prop_assert_eq!(
                    sum.to_bits(),
                    sums.get(&k).copied().unwrap_or(0.0).to_bits(),
                    "sum bits for {}", &k
                ),
                // An all-null parent group has all-null children.
                None => prop_assert!(!sums.contains_key(&k), "null parent, numeric child for {}", &k),
            }
        }
    }

    #[test]
    fn cube_quality_supports_partition_the_fact_rows(
        facts in arb_cube_facts(),
        shards in 1usize..8
    ) {
        let n = facts.n_rows();
        let cube = Cube::new(facts, &["d1", "d2"], vec![Measure::Mean("x".into())]).unwrap();
        let result = cube
            .rollup_quality(&["d1", "d2"], &CubeOptions::with_shards(shards))
            .unwrap();
        prop_assert!(!result.is_degraded());
        let total: u64 = result.quality.iter().map(|q| q.support).sum();
        prop_assert_eq!(total as usize, n, "every fact row in exactly one cell");
        for q in &result.quality {
            prop_assert!(q.support >= 1, "emitted cells have support");
            prop_assert!(q.null_ratio.is_finite());
            prop_assert!((0.0..=1.0).contains(&q.null_ratio), "ratio {} out of bounds", q.null_ratio);
        }
    }

    #[test]
    fn cube_slice_and_dice_agree_with_the_full_cube(
        facts in arb_cube_facts(),
        shards in 1usize..8
    ) {
        let cube = Cube::new(
            facts.clone(),
            &["d1", "d2"],
            vec![
                Measure::Sum("x".into()),
                Measure::Mean("x".into()),
                Measure::Count("x".into()),
                Measure::Min("x".into()),
                Measure::Max("x".into()),
            ],
        ).unwrap();
        let opts = CubeOptions::with_shards(shards);
        let parent = cube.rollup_quality(&["d1"], &opts).unwrap().table;
        // Slicing on each d1 value and re-rolling must reproduce that
        // parent row cell for cell, and the slices partition the facts.
        let mut sliced_rows = 0;
        for r in 0..parent.n_rows() {
            let v = parent.get("d1", r).unwrap().to_string();
            let slice = cube.slice("d1", &v).unwrap();
            sliced_rows += slice.facts().n_rows();
            let row = slice.rollup_quality(&["d1"], &opts).unwrap().table;
            prop_assert_eq!(row.n_rows(), 1);
            for c in parent.column_names() {
                prop_assert_eq!(
                    format!("{:?}", parent.get(c, r).unwrap()),
                    format!("{:?}", row.get(c, 0).unwrap()),
                    "column {} for d1={}", c, &v
                );
            }
        }
        prop_assert_eq!(sliced_rows, facts.n_rows(), "slices partition the fact rows");
        // Dicing on every d1 value keeps the whole cube.
        let keys: Vec<String> = (0..parent.n_rows())
            .map(|r| parent.get("d1", r).unwrap().to_string())
            .collect();
        let keys: Vec<&str> = keys.iter().map(String::as_str).collect();
        prop_assert_eq!(
            cube.dice("d1", &keys).unwrap().facts().fingerprint(),
            facts.fingerprint()
        );
    }

    #[test]
    fn cube_shard_count_never_changes_the_bits(
        facts in arb_cube_facts(),
        shards in 2usize..9
    ) {
        let cube = Cube::new(
            facts,
            &["d1", "d2"],
            vec![
                Measure::Sum("x".into()),
                Measure::Min("x".into()),
                Measure::Max("x".into()),
            ],
        ).unwrap();
        let one = cube
            .rollup_quality(&["d1", "d2"], &CubeOptions::with_shards(1))
            .unwrap().table;
        let many = cube
            .rollup_quality(&["d1", "d2"], &CubeOptions::with_shards(shards))
            .unwrap().table;
        prop_assert_eq!(one.fingerprint(), many.fingerprint());
    }
}
