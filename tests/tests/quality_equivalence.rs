//! Quality-kernel rewrite equivalence suite (DESIGN.md §12).
//!
//! The pre-rewrite row-wise measurement code is frozen in-tree as
//! `openbi::quality::reference`. Every test here profiles the identical
//! table through both implementations **in the same process** and
//! demands byte-identical output for every exact criterion —
//! completeness, duplicates, correlation, balance, outliers,
//! consistency, dimensionality — across seeds {7, 21, 42, 1042}, with
//! MCAR-degraded and multi-class corpora.
//!
//! The noise estimators carry the PR's three intentional fixes
//! (exclusion threading, order-independent tie-breaking, seeded
//! sampling instead of first-`max_rows` truncation), so they get the
//! frozen-vs-live treatment the fixes demand instead: bitwise equality
//! where no fix applies (2-class tables within the row cap), a pinned
//! tolerance plus bit-stable reproducibility where sampling legitimately
//! changed the estimate, and directional assertions for the tie fix.
//!
//! The grid layer pins the serving path: the §3.1 experiment grid must
//! produce the same KB bytes at workers {1, 4}, with the profile cache
//! disabled and enabled — a cached profile must be indistinguishable
//! from a freshly measured one.

use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::SharedKnowledgeBase;
use openbi::obs;
use openbi::pipeline::{run_pipeline, DataSource, PipelineConfig};
use openbi_datagen::{make_blobs, BlobsConfig};
use openbi_quality::{
    measure_profile, measure_profile_cached, reference, Degradation, MeasureOptions,
    MissingInjector, ProfileCache, QualityProfile,
};
use openbi_table::Table;
use std::sync::{Arc, Mutex};

const SEEDS: [u64; 4] = [7, 21, 42, 1042];
const WORKERS: [usize; 2] = [1, 4];

/// Serializes the tests that toggle the global profile cache or install
/// a global metrics registry — both are process-wide.
fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Assert every profile field matches to the exact bit, except the two
/// noise estimates, which the caller checks per its corpus.
fn assert_exact_criteria_bitwise(live: &QualityProfile, frozen: &QualityProfile, ctx: &str) {
    assert_eq!(live.n_rows, frozen.n_rows, "{ctx}: n_rows");
    assert_eq!(
        live.n_attributes, frozen.n_attributes,
        "{ctx}: n_attributes"
    );
    let fields: [(&str, f64, f64); 9] = [
        ("completeness", live.completeness, frozen.completeness),
        (
            "duplicate_ratio",
            live.duplicate_ratio,
            frozen.duplicate_ratio,
        ),
        (
            "max_abs_correlation",
            live.max_abs_correlation,
            frozen.max_abs_correlation,
        ),
        (
            "mean_abs_correlation",
            live.mean_abs_correlation,
            frozen.mean_abs_correlation,
        ),
        ("class_balance", live.class_balance, frozen.class_balance),
        ("minority_ratio", live.minority_ratio, frozen.minority_ratio),
        ("dimensionality", live.dimensionality, frozen.dimensionality),
        ("outlier_ratio", live.outlier_ratio, frozen.outlier_ratio),
        ("consistency", live.consistency, frozen.consistency),
    ];
    for (name, l, f) in fields {
        assert_eq!(
            bits(l),
            bits(f),
            "{ctx}: {name} drifted from the row-wise reference ({l} vs {f})"
        );
    }
    assert_eq!(
        live.distinct_class_count, frozen.distinct_class_count,
        "{ctx}: distinct_class_count"
    );
}

/// 2-class corpora within the noise row cap: blobs, and the same blobs
/// with 25% MCAR missing cells (labels kept intact so k-NN votes never
/// thin out into ties).
fn two_class_corpora(seed: u64) -> Vec<(String, Table)> {
    let blobs = make_blobs(&BlobsConfig {
        n_rows: 150,
        n_features: 5,
        n_classes: 2,
        class_separation: 2.5,
        seed,
    });
    let degraded = Degradation::new()
        .then(MissingInjector::mcar(0.25).exclude(["class"]))
        .apply(&blobs, seed)
        .unwrap();
    vec![
        (format!("blobs-{seed}"), blobs),
        (format!("blobs-mcar-{seed}"), degraded),
    ]
}

/// On 2-class tables within the row cap, none of the three noise fixes
/// can fire (full feature set, 5 votes over 2 labels never tie, no
/// sampling) — so the *entire* profile, noise estimates included, must
/// be bit-identical to the frozen reference.
#[test]
fn two_class_profiles_are_bitwise_identical_to_reference() {
    for seed in SEEDS {
        for (name, table) in two_class_corpora(seed) {
            let opts = MeasureOptions::with_target("class");
            let live = measure_profile(&table, &opts);
            let frozen = reference::measure_profile(&table, &opts);
            let ctx = format!("dataset {name}");
            assert_exact_criteria_bitwise(&live, &frozen, &ctx);
            assert_eq!(
                bits(live.label_noise_estimate),
                bits(frozen.label_noise_estimate),
                "{ctx}: label noise must not drift without a tie or exclusion in play"
            );
            assert_eq!(
                bits(live.attr_noise_estimate),
                bits(frozen.attr_noise_estimate),
                "{ctx}: attribute noise must not drift within the row cap"
            );
        }
    }
}

/// With 3 classes, 5-vote neighborhoods can tie; the tie fix only ever
/// removes disagreements, so the live estimate is bounded above by the
/// reference. Every exact criterion still matches bitwise.
#[test]
fn three_class_profiles_match_except_tie_broken_label_noise() {
    for seed in SEEDS {
        let table = make_blobs(&BlobsConfig {
            n_rows: 180,
            n_features: 4,
            n_classes: 3,
            class_separation: 1.0,
            seed,
        });
        let opts = MeasureOptions::with_target("class");
        let live = measure_profile(&table, &opts);
        let frozen = reference::measure_profile(&table, &opts);
        let ctx = format!("blobs3-{seed}");
        assert_exact_criteria_bitwise(&live, &frozen, &ctx);
        assert_eq!(
            bits(live.attr_noise_estimate),
            bits(frozen.attr_noise_estimate),
            "{ctx}: attribute noise must not drift within the row cap"
        );
        assert!(
            live.label_noise_estimate <= frozen.label_noise_estimate,
            "{ctx}: the tie fix can only remove disagreements \
             (live {} vs reference {})",
            live.label_noise_estimate,
            frozen.label_noise_estimate
        );
        assert!(
            (0.0..=1.0).contains(&live.label_noise_estimate),
            "{ctx}: label noise out of range"
        );
    }
}

/// Beyond the row cap the estimators legitimately diverge (seeded sample
/// vs. first-512 truncation). Pin the divergence: a fixed tolerance, the
/// same seeded sample on every call (bit-stable), and both estimates in
/// range.
#[test]
fn sampled_noise_estimates_are_pinned_and_reproducible() {
    for seed in SEEDS {
        let table = make_blobs(&BlobsConfig {
            n_rows: 1500,
            n_features: 4,
            n_classes: 2,
            class_separation: 2.0,
            seed,
        });
        let opts = MeasureOptions::with_target("class");
        let live = measure_profile(&table, &opts);
        let frozen = reference::measure_profile(&table, &opts);
        let ctx = format!("blobs-large-{seed}");
        // Exact criteria never sample — still bitwise.
        assert_exact_criteria_bitwise(&live, &frozen, &ctx);
        // Homogeneous blobs: a fair sample and the prefix must land in
        // the same neighborhood even though the rows differ.
        assert!(
            (live.attr_noise_estimate - frozen.attr_noise_estimate).abs() <= 0.2,
            "{ctx}: attribute noise moved more than the pinned tolerance \
             (live {} vs reference {})",
            live.attr_noise_estimate,
            frozen.attr_noise_estimate
        );
        for (name, v) in [
            ("label_noise", live.label_noise_estimate),
            ("attr_noise", live.attr_noise_estimate),
        ] {
            assert!((0.0..=1.0).contains(&v), "{ctx}: {name} out of range: {v}");
        }
        let again = measure_profile(&table, &opts);
        assert_eq!(
            bits(live.label_noise_estimate),
            bits(again.label_noise_estimate),
            "{ctx}: seeded sampling must be reproducible"
        );
        assert_eq!(
            bits(live.attr_noise_estimate),
            bits(again.attr_noise_estimate),
            "{ctx}: seeded sampling must be reproducible"
        );
    }
}

fn grid_datasets() -> Vec<ExperimentDataset> {
    [1u64, 2]
        .iter()
        .map(|&seed| {
            ExperimentDataset::new(
                format!("blobs-{seed}"),
                make_blobs(&BlobsConfig {
                    n_rows: 120,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 3.0,
                    seed,
                }),
                "class",
            )
        })
        .collect()
}

/// Order-independent, timing-free KB fingerprint (`train_ms` is the only
/// wall-clock field in a record).
fn kb_fingerprint(kb: &SharedKnowledgeBase) -> Vec<String> {
    let mut keys: Vec<String> = kb
        .snapshot()
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.metrics.train_ms = 0.0;
            serde_json::to_string(&r).unwrap()
        })
        .collect();
    keys.sort();
    keys
}

fn run_grid_fingerprint(workers: usize) -> Vec<String> {
    let kb = SharedKnowledgeBase::default();
    let config = ExperimentConfig {
        severities: vec![0.0, 1.0],
        folds: 2,
        seed: 42,
        parallel: workers > 1,
        workers,
        ..ExperimentConfig::default()
    };
    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    let report = run_phase1_report(&grid_datasets(), &criteria, &config, &kb).unwrap();
    assert!(
        report.failures.is_empty(),
        "{workers} workers: grid must run clean"
    );
    kb_fingerprint(&kb)
}

/// The experiment grid must produce the same KB bytes at every worker
/// count, with the profile cache off and on — a cached profile must be
/// indistinguishable from a fresh measurement.
#[test]
fn grid_kb_is_byte_identical_across_workers_and_cache_modes() {
    let _guard = global_state_lock();
    let cache = ProfileCache::global();
    let mut fingerprints = Vec::new();
    for enabled in [false, true] {
        cache.set_enabled(enabled);
        cache.clear();
        for workers in WORKERS {
            fingerprints.push((enabled, workers, run_grid_fingerprint(workers)));
        }
    }
    cache.set_enabled(true);
    let (_, _, baseline) = &fingerprints[0];
    assert!(!baseline.is_empty(), "grid produced no KB records");
    for (enabled, workers, fp) in &fingerprints[1..] {
        assert_eq!(
            fp, baseline,
            "cache={enabled}, {workers} workers: KB bytes drifted from the \
             cache-off 1-worker run"
        );
    }
}

/// Re-running the pipeline on an unchanged table must serve the quality
/// profile from the cache — observable as `quality.cache.hits`.
#[test]
fn pipeline_records_cache_hits_for_unchanged_tables() {
    let _guard = global_state_lock();
    let cache = ProfileCache::global();
    cache.set_enabled(true);
    cache.clear();
    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));
    let table = make_blobs(&BlobsConfig {
        n_rows: 80,
        n_features: 3,
        n_classes: 2,
        class_separation: 3.0,
        seed: 5,
    });
    let config = PipelineConfig {
        target: Some("class".into()),
        folds: 2,
        ..PipelineConfig::default()
    };
    for _ in 0..2 {
        let outcome = run_pipeline(
            DataSource::Table {
                name: "cached".into(),
                table: table.clone(),
            },
            &config,
            None,
        )
        .unwrap();
        assert!(outcome.degraded.is_empty(), "pipeline must run clean");
    }
    obs::uninstall();
    let snapshot = registry.snapshot();
    let hits = snapshot.counters.get("quality.cache.hits").copied();
    assert!(
        hits.is_some_and(|h| h >= 1),
        "an unchanged table re-profiled twice must hit the cache; counters: {:?}",
        snapshot.counters
    );
    // The cached path still timed its (cheap) measurements.
    assert!(
        snapshot.histograms.contains_key("quality.measure.seconds"),
        "profile measurement must record its duration histogram"
    );
}

/// A profile served through the cache must be byte-identical to a direct
/// measurement — same struct, same bits.
#[test]
fn cached_profile_is_bitwise_identical_to_direct_measurement() {
    let table = make_blobs(&BlobsConfig {
        n_rows: 100,
        n_features: 4,
        n_classes: 2,
        class_separation: 2.0,
        seed: 13,
    });
    let opts = MeasureOptions::with_target("class");
    let direct = measure_profile(&table, &opts);
    let first = measure_profile_cached(&table, &opts);
    let repeat = measure_profile_cached(&table, &opts);
    for p in [&first, &repeat] {
        assert_exact_criteria_bitwise(p, &direct, "cached vs direct");
        assert_eq!(
            bits(p.label_noise_estimate),
            bits(direct.label_noise_estimate)
        );
        assert_eq!(
            bits(p.attr_noise_estimate),
            bits(direct.attr_noise_estimate)
        );
    }
}
