//! Concurrency smoke tests for the snapshot-swap serving tier
//! (DESIGN.md §13): reader threads answer advisor queries through
//! [`AdvisorService`] while the experiment grid publishes into the same
//! [`SnapshotKnowledgeBase`]. Every reader must see generations advance
//! monotonically, every pinned snapshot must be internally consistent
//! (one generation ⇔ one store size), and the final published contents
//! must match a sequential run record-for-record.

use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{
    Advisor, AdvisorService, ExperimentRecord, KnowledgeBase, SharedKnowledgeBase,
    SnapshotKnowledgeBase,
};
use openbi::mining::AlgorithmSpec;
use openbi::quality::QualityProfile;
use openbi_datagen::{make_blobs, BlobsConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const READERS: usize = 3;

fn datasets() -> Vec<ExperimentDataset> {
    [1u64, 2]
        .iter()
        .map(|&seed| {
            ExperimentDataset::new(
                format!("blobs-{seed}"),
                make_blobs(&BlobsConfig {
                    n_rows: 120,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 3.0,
                    seed,
                }),
                "class",
            )
        })
        .collect()
}

fn config(seed: u64, workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![AlgorithmSpec::ZeroR, AlgorithmSpec::NaiveBayes],
        severities: vec![0.0, 1.0],
        folds: 2,
        seed,
        parallel: workers > 1,
        workers,
        ..ExperimentConfig::default()
    }
}

/// Two records so the advisor has something to rank from generation 1.
fn seed_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add_batch(["ZeroR", "NaiveBayes"].iter().enumerate().map(|(i, alg)| {
        let mut r = ExperimentRecord {
            dataset: "seed".into(),
            algorithm: (*alg).into(),
            seed: i as u64,
            ..ExperimentRecord::default()
        };
        r.metrics.accuracy = 0.5 + 0.1 * i as f64;
        r
    }));
    kb
}

/// Order-independent, timing-free record fingerprint (the chaos-suite
/// pattern: `train_ms` is the only wall-clock field).
fn fingerprint(kb: &KnowledgeBase) -> Vec<String> {
    let mut keys: Vec<String> = kb
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.metrics.train_ms = 0.0;
            serde_json::to_string(&r).unwrap()
        })
        .collect();
    keys.sort();
    keys
}

/// Readers hammer `advise_many` while a 4-worker grid publishes into
/// the store. Per reader: generations never go backwards and every
/// batch answers against exactly one generation. Across readers: a
/// generation uniquely determines the store size, and sizes only grow
/// with generations. Afterwards: the drained store matches a
/// sequential `SharedKnowledgeBase` run record-for-record.
#[test]
fn readers_stay_consistent_while_the_grid_publishes() {
    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    let store = Arc::new(SnapshotKnowledgeBase::new(seed_kb()));
    store.flush().expect("seeding is fault-free");
    let seeded_generation = store.generation();
    let service = AdvisorService::new(Advisor::default(), Arc::clone(&store));
    let profiles = vec![QualityProfile::default(); 4];
    let stop = AtomicBool::new(false);

    let report = std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                s.spawn(|| {
                    let mut last_generation = 0u64;
                    let mut observations = Vec::new();
                    loop {
                        let batch = service
                            .advise_many(&profiles)
                            .expect("advise during publishes");
                        assert!(
                            batch.generation >= last_generation,
                            "reader saw generations go backwards: {} after {}",
                            batch.generation,
                            last_generation
                        );
                        assert_eq!(batch.advice.len(), profiles.len());
                        last_generation = batch.generation;
                        let pin = store.pin();
                        observations.push((pin.generation(), pin.len()));
                        if stop.load(Ordering::Relaxed) {
                            return observations;
                        }
                        std::thread::sleep(Duration::from_micros(500));
                    }
                })
            })
            .collect();
        let report = run_phase1_report(&datasets(), &criteria, &config(11, 4), &*store).unwrap();
        stop.store(true, Ordering::Relaxed);
        let mut observations: Vec<(u64, usize)> = Vec::new();
        for r in readers {
            observations.extend(r.join().expect("reader thread"));
        }
        // Cross-reader consistency: snapshots are immutable, so one
        // generation maps to exactly one store size, and appends mean
        // later generations are never smaller.
        observations.sort_unstable();
        for w in observations.windows(2) {
            if w[0].0 == w[1].0 {
                assert_eq!(
                    w[0].1, w[1].1,
                    "generation {} observed with two different sizes",
                    w[0].0
                );
            } else {
                assert!(
                    w[0].1 <= w[1].1,
                    "generation {} holds more records than later generation {}",
                    w[0].0,
                    w[1].0
                );
            }
        }
        report
    });
    assert!(report.failures.is_empty(), "{:?}", report.failures);

    store.flush().expect("drain is fault-free");
    assert_eq!(store.pending_len(), 0);
    assert!(
        store.generation() > seeded_generation,
        "the grid must have published at least one generation"
    );

    // Record-for-record equality with a sequential run into the
    // pre-serving RwLock store, over the same seed records.
    let baseline = SharedKnowledgeBase::new(seed_kb());
    let baseline_report =
        run_phase1_report(&datasets(), &criteria, &config(11, 1), &baseline).unwrap();
    assert!(baseline_report.failures.is_empty());
    assert_eq!(
        fingerprint(&store.pin()),
        fingerprint(&baseline.snapshot()),
        "concurrent snapshot store diverged from the sequential baseline"
    );
}

/// A snapshot pinned before the grid starts is untouched by every
/// publish that lands afterwards — same generation, same contents.
#[test]
fn pinned_snapshots_survive_grid_publishes_untouched() {
    let store = Arc::new(SnapshotKnowledgeBase::new(seed_kb()));
    store.flush().expect("seeding is fault-free");
    let pinned = store.pin();
    let pinned_generation = pinned.generation();
    let pinned_fingerprint = fingerprint(&pinned);

    let report = run_phase1_report(
        &datasets(),
        &[Criterion::Completeness],
        &config(23, 4),
        &*store,
    )
    .unwrap();
    assert!(report.failures.is_empty());
    store.flush().expect("drain is fault-free");

    assert_eq!(pinned.generation(), pinned_generation);
    assert_eq!(
        fingerprint(&pinned),
        pinned_fingerprint,
        "a pinned snapshot must be immutable across publishes"
    );
    assert!(store.generation() > pinned_generation);
    assert!(store.pin().len() > pinned.len());
}
