//! Crash-durability proof obligations for the knowledge-base
//! write-ahead log (DESIGN.md §15).
//!
//! Four guarantees are exercised end to end:
//!
//! 1. **Truncate-anywhere**: cutting the tail segment at *every* byte
//!    offset yields a clean recovery of exactly the complete frames —
//!    a torn tail is repaired, never escalated to a hard error.
//! 2. **SIGKILL**: a child process appending with `fsync always` is
//!    killed mid-run; the parent recovers every acknowledged record
//!    bit-exactly and resumes the run to the fault-free fingerprint.
//! 3. **Chaos matrix**: the experiment grid publishes through a
//!    [`WalSink`] while `kb.wal.append` faults fire, across the
//!    `OPENBI_CHAOS_SEEDS` × `OPENBI_CHAOS_WORKERS` matrix and every
//!    fsync policy; the log recovers bitwise-identical to the served
//!    store, and a persistently failing log degrades gracefully
//!    (counted, run completes) instead of deadlocking.
//! 4. **Metrics**: `kb.wal.*` / `kb.recovery.*` / `kb.checkpoint.*`
//!    instruments carry exact counts for a known workload.
//!
//! Tests in this binary serialize on [`SERIAL`] so the exact-count
//! metric assertions can't be inflated by a concurrent test's WAL
//! traffic (the obs registry slot is process-global).

use openbi::experiment::{run_phase1_report, Criterion, ExperimentConfig, ExperimentDataset};
use openbi::kb::{
    recover, ExperimentRecord, FsyncPolicy, KnowledgeBase, SharedKnowledgeBase, WalOptions,
    WalSink, WalWriter,
};
use openbi::mining::AlgorithmSpec;
use openbi_datagen::{make_blobs, BlobsConfig};
use openbi_faults::{FaultPlan, FaultRule};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("openbi-walrec-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic record: same `i` ⇒ same bytes on every platform.
fn record(i: usize) -> ExperimentRecord {
    let mut r = ExperimentRecord {
        dataset: format!("walrec-{}", i % 7),
        degradations: vec![format!("noise:{}", i % 3)],
        algorithm: ["ZeroR", "NaiveBayes", "J48"][i % 3].to_string(),
        seed: i as u64,
        ..ExperimentRecord::default()
    };
    r.metrics.accuracy = (i as f64) / 1024.0;
    r.metrics.kappa = 1.0 / (i as f64 + 1.0);
    r.profile.n_rows = 100 + i;
    r.profile.completeness = 1.0 - (i as f64) / 2048.0;
    r
}

/// Order-independent, bit-exact fingerprint.
fn fingerprint(kb: &KnowledgeBase) -> Vec<String> {
    let mut keys: Vec<String> = kb
        .records()
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();
    keys.sort();
    keys
}

/// Like [`fingerprint`], but timing-free (`train_ms` zeroed) — for
/// comparing two *independent* grid runs.
fn timing_free_fingerprint(kb: &KnowledgeBase) -> Vec<String> {
    let mut keys: Vec<String> = kb
        .records()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.metrics.train_ms = 0.0;
            serde_json::to_string(&r).unwrap()
        })
        .collect();
    keys.sort();
    keys
}

fn only_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    assert_eq!(segments.len(), 1, "expected exactly one segment in {dir:?}");
    segments.pop().unwrap()
}

/// Byte offsets at which each frame of `segment` ends (magic at 8).
fn frame_boundaries(segment: &[u8]) -> Vec<usize> {
    let mut boundaries = Vec::new();
    let mut pos = 8;
    while pos + 8 <= segment.len() {
        let len = u32::from_le_bytes([
            segment[pos],
            segment[pos + 1],
            segment[pos + 2],
            segment[pos + 3],
        ]) as usize;
        pos += 8 + len;
        if pos > segment.len() {
            break;
        }
        boundaries.push(pos);
    }
    boundaries
}

/// Guarantee 1: every truncation point of the tail segment — mid-magic,
/// mid-header, mid-payload, on a frame boundary — recovers exactly the
/// complete frames, and the repair is idempotent (a second recovery
/// replays the same records and truncates nothing).
///
/// `OPENBI_WAL_FUZZ_FRAMES` scales the log (CI's crash-recovery job
/// raises it); unset, a compact log keeps the sweep fast locally.
#[test]
fn every_truncation_of_the_tail_segment_recovers() {
    let _guard = serial();
    let frames: usize = std::env::var("OPENBI_WAL_FUZZ_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let dir = fresh_dir("fuzz-src");
    let mut writer = WalWriter::open(WalOptions::new(&dir).fsync(FsyncPolicy::Never)).unwrap();
    for i in 0..frames {
        writer.append_batch(&[record(i)]).unwrap();
    }
    drop(writer);
    let segment = only_segment(&dir);
    let full = std::fs::read(&segment).unwrap();
    let boundaries = frame_boundaries(&full);
    assert_eq!(boundaries.len(), frames, "one frame per record");

    let trial = fresh_dir("fuzz-trial");
    let trial_segment = trial.join(segment.file_name().unwrap());
    for keep in 0..=full.len() {
        std::fs::write(&trial_segment, &full[..keep]).unwrap();
        let (kb, report) = recover(&trial)
            .unwrap_or_else(|e| panic!("truncation at byte {keep} must repair, got: {e}"));
        let expected = boundaries.iter().filter(|b| **b <= keep).count();
        assert_eq!(kb.len(), expected, "complete frames within {keep} bytes");
        let mut expected_kb = KnowledgeBase::new();
        for i in 0..expected {
            expected_kb.add(record(i));
        }
        assert_eq!(
            fingerprint(&kb),
            fingerprint(&expected_kb),
            "recovered records at keep={keep} must be the exact frame prefix"
        );
        let torn = if keep < 8 {
            keep
        } else {
            keep - boundaries[..expected].last().copied().unwrap_or(8)
        };
        assert_eq!(
            report.truncated_bytes as usize, torn,
            "torn bytes at keep={keep}"
        );
        let (again, repeat) = recover(&trial).unwrap();
        assert_eq!(again.len(), expected, "repair is idempotent at {keep}");
        assert_eq!(repeat.truncated_bytes, 0, "second pass truncates nothing");
        assert_eq!(fingerprint(&again), fingerprint(&kb));
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&trial).ok();
}

const SIGKILL_CHILD_ENV: &str = "OPENBI_WAL_SIGKILL_CHILD";
const SIGKILL_TOTAL: usize = 400;
const SIGKILL_MIN_ACKED: usize = 25;

/// Child body: append records one at a time under `fsync always`,
/// acknowledging each durable index via an atomically renamed file,
/// until the parent's SIGKILL lands.
fn sigkill_child(dir: &Path) {
    let mut writer =
        WalWriter::open(WalOptions::new(dir.join("wal")).fsync(FsyncPolicy::Always)).unwrap();
    for i in 0..SIGKILL_TOTAL {
        writer.append_batch(&[record(i)]).unwrap();
        let tmp = dir.join("acked.tmp");
        std::fs::write(&tmp, i.to_string()).unwrap();
        std::fs::rename(&tmp, dir.join("acked")).unwrap();
    }
    // Ran to completion before the kill landed: idle so the parent's
    // SIGKILL still terminates us (never exit cleanly as "passed").
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Guarantee 2: SIGKILL a child mid-append; recover in the parent. No
/// acknowledged record may be lost or altered, and resuming the run on
/// top of the recovered log converges to the fault-free fingerprint.
#[test]
fn sigkill_mid_run_recovers_every_acknowledged_record() {
    if let Ok(dir) = std::env::var(SIGKILL_CHILD_ENV) {
        sigkill_child(Path::new(&dir));
        return;
    }
    let _guard = serial();
    let dir = fresh_dir("sigkill");
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args([
            "--exact",
            "sigkill_mid_run_recovers_every_acknowledged_record",
            "--nocapture",
        ])
        .env(SIGKILL_CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn child test process");
    let ack_path = dir.join("acked");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let acked = std::fs::read_to_string(&ack_path)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok());
        if acked.is_some_and(|n| n >= SIGKILL_MIN_ACKED) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child never acknowledged {SIGKILL_MIN_ACKED} records"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL the child");
    child.wait().unwrap();
    let acked: usize = std::fs::read_to_string(&ack_path)
        .unwrap()
        .trim()
        .parse()
        .unwrap();

    let wal_dir = dir.join("wal");
    let (kb, report) = recover(&wal_dir).expect("a SIGKILLed log must recover");
    let recovered: HashSet<String> = fingerprint(&kb).into_iter().collect();
    for i in 0..=acked {
        let key = serde_json::to_string(&record(i)).unwrap();
        assert!(
            recovered.contains(&key),
            "acknowledged record {i} lost (acked {acked}, {report:?})"
        );
    }

    // Resume: append whatever the crash cut short, then prove a fresh
    // replay is fingerprint-identical to the run that never crashed.
    let missing: Vec<ExperimentRecord> = (0..SIGKILL_TOTAL)
        .map(record)
        .filter(|r| !recovered.contains(&serde_json::to_string(r).unwrap()))
        .collect();
    let mut writer = WalWriter::open(WalOptions::new(&wal_dir)).unwrap();
    writer.append_batch(&missing).unwrap();
    drop(writer);
    let (resumed, _) = recover(&wal_dir).unwrap();
    let mut fault_free = KnowledgeBase::new();
    for i in 0..SIGKILL_TOTAL {
        fault_free.add(record(i));
    }
    assert_eq!(fingerprint(&resumed), fingerprint(&fault_free));
    std::fs::remove_dir_all(&dir).ok();
}

fn env_list(var: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn chaos_seeds() -> Vec<u64> {
    env_list("OPENBI_CHAOS_SEEDS", &[7])
}

fn chaos_workers() -> Vec<usize> {
    env_list("OPENBI_CHAOS_WORKERS", &[1, 4])
        .into_iter()
        .map(|w| w as usize)
        .collect()
}

fn datasets() -> Vec<ExperimentDataset> {
    [1u64, 2]
        .iter()
        .map(|&seed| {
            ExperimentDataset::new(
                format!("blobs-{seed}"),
                make_blobs(&BlobsConfig {
                    n_rows: 120,
                    n_features: 4,
                    n_classes: 2,
                    class_separation: 3.0,
                    seed,
                }),
                "class",
            )
        })
        .collect()
}

fn config(seed: u64, workers: usize) -> ExperimentConfig {
    ExperimentConfig {
        algorithms: vec![AlgorithmSpec::ZeroR, AlgorithmSpec::NaiveBayes],
        severities: vec![0.0, 1.0],
        folds: 2,
        seed,
        parallel: workers > 1,
        workers,
        retry_backoff: Duration::ZERO,
        ..ExperimentConfig::default()
    }
}

/// Guarantee 3: the grid publishes through a `WalSink` whose appends
/// fail once per frame key, under every fsync policy, every chaos seed,
/// and 1 and 4 workers. The sink's retries absorb the faults (no
/// degradation), the served store matches the fault-free run, and — the
/// durability headline — replaying the log from disk reproduces the
/// served store **bitwise**.
#[test]
fn chaos_matrix_replays_the_log_bitwise_identical() {
    let _guard = serial();
    let criteria = [Criterion::Completeness, Criterion::LabelNoise];
    for seed in chaos_seeds() {
        let baseline_kb = SharedKnowledgeBase::default();
        let baseline =
            run_phase1_report(&datasets(), &criteria, &config(seed, 1), &baseline_kb).unwrap();
        assert!(baseline.failures.is_empty(), "baseline must be fault-free");
        let expected = timing_free_fingerprint(&baseline_kb.snapshot());

        for workers in chaos_workers() {
            for fsync in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
                let dir = fresh_dir(&format!("chaos-{seed}-{workers}-{fsync}"));
                let plan =
                    Arc::new(FaultPlan::new(seed).with(FaultRule::error("kb.wal.append").times(1)));
                let writer = WalWriter::open(
                    WalOptions::new(&dir)
                        .fsync(fsync)
                        .segment_bytes(4096)
                        .fault_plan(plan),
                )
                .unwrap();
                let sink = WalSink::new(SharedKnowledgeBase::default(), writer);
                let report =
                    run_phase1_report(&datasets(), &criteria, &config(seed, workers), &sink)
                        .unwrap();
                assert!(report.failures.is_empty(), "grid itself is fault-free");
                assert!(
                    !sink.degraded(),
                    "one injected failure per frame must be absorbed by retries \
                     (seed {seed}, workers {workers}, fsync {fsync})"
                );
                let served = sink.inner().snapshot();
                assert_eq!(
                    timing_free_fingerprint(&served),
                    expected,
                    "served store diverged (seed {seed}, workers {workers}, fsync {fsync})"
                );
                drop(sink);
                let (replayed, recovery) = recover(&dir).unwrap();
                assert_eq!(
                    fingerprint(&replayed),
                    fingerprint(&served),
                    "log replay is not bitwise-identical to the served store \
                     (seed {seed}, workers {workers}, fsync {fsync}, {recovery:?})"
                );
                assert!(recovery.segments_scanned >= 1);
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

/// Graceful degradation: when the log persistently refuses syncs, every
/// batch is still forwarded to the in-memory store (the run completes
/// with full results) and the failures are counted — never a panic,
/// never a deadlock, never silent.
#[test]
fn persistent_wal_failure_degrades_without_losing_the_run() {
    let _guard = serial();
    let criteria = [Criterion::Completeness];
    let seed = *chaos_seeds().first().unwrap();
    let dir = fresh_dir("degrade");
    let plan = Arc::new(FaultPlan::new(seed).with(FaultRule::error("kb.wal.sync").times(u32::MAX)));
    let writer = WalWriter::open(WalOptions::new(&dir).fault_plan(plan)).unwrap();
    let sink = WalSink::new(SharedKnowledgeBase::default(), writer);
    let report = run_phase1_report(&datasets(), &criteria, &config(seed, 2), &sink).unwrap();
    assert!(report.failures.is_empty(), "the run itself must complete");
    assert!(sink.degraded(), "un-loggable batches must be counted");
    assert!(sink.failures() > 0);
    assert!(
        !sink.inner().snapshot().is_empty(),
        "results must still be served in-memory"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Guarantee 4: the durability instruments carry *exact* values for a
/// known workload — append counts and byte totals, replayed frames,
/// truncated torn bytes, fsync/recovery/checkpoint timings.
#[test]
fn wal_metrics_are_counted_exactly() {
    let _guard = serial();
    use openbi::kb::wal::segment::encode_frame;
    use openbi::obs;

    let registry = Arc::new(obs::MetricsRegistry::new());
    obs::install(Arc::clone(&registry));

    let dir = fresh_dir("metrics");
    let records: Vec<ExperimentRecord> = (0..5).map(record).collect();
    let frame_bytes: u64 = records
        .iter()
        .map(|r| encode_frame(serde_json::to_string(r).unwrap().as_bytes()).len() as u64)
        .sum();
    let mut writer = WalWriter::open(WalOptions::new(&dir).fsync(FsyncPolicy::Always)).unwrap();
    writer.append_batch(&records[..3]).unwrap();
    writer.append_batch(&records[3..]).unwrap();
    drop(writer);

    // Tear the tail: cut 3 bytes off the last frame, then recover.
    let segment = only_segment(&dir);
    let full = std::fs::read(&segment).unwrap();
    let boundaries = frame_boundaries(&full);
    let torn = full.len() - boundaries[3];
    std::fs::write(&segment, &full[..full.len() - 3]).unwrap();
    let (kb, report) = recover(&dir).unwrap();
    assert_eq!(kb.len(), 4);
    assert_eq!(report.frames_replayed, 4);
    assert_eq!(report.truncated_bytes as usize, torn - 3);

    // Checkpoint the recovered state.
    let mut writer = WalWriter::open(WalOptions::new(&dir)).unwrap();
    let checkpoint = writer.checkpoint(&kb).unwrap();
    assert_eq!(checkpoint.records, 4);
    drop(writer);

    obs::uninstall();
    let snap = registry.snapshot();
    assert_eq!(snap.counters["kb.wal.appends_total"], 5);
    assert_eq!(snap.counters["kb.wal.bytes_total"], frame_bytes);
    assert_eq!(snap.counters["kb.recovery.frames_replayed"], 4);
    assert_eq!(
        snap.counters["kb.recovery.truncated_bytes"] as usize,
        torn - 3
    );
    assert_eq!(snap.histograms["kb.recovery.seconds"].count, 1);
    assert_eq!(snap.histograms["kb.checkpoint.seconds"].count, 1);
    assert!(
        snap.histograms["kb.wal.fsync.seconds"].count >= 5,
        "fsync always ⇒ at least one sync per frame"
    );
    assert!(snap.gauges["kb.wal.segments"] >= 1.0);
    std::fs::remove_dir_all(&dir).ok();
}
